package repl

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// newPipelineRig is newRig with a replication-pipeline configuration
// applied before any slave attaches.
func newPipelineRig(t *testing.T, seed int64, nSlaves int, mode Mode, place cloud.Placement, pc PipelineConfig) *rig {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{})
	mInst := c.Launch("master", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	mSrv := server.New(env, "master", mInst, server.DefaultCostModel())
	m := NewMaster(env, mSrv, c.Network(), mode)
	m.Pipeline = pc
	mSrv.GroupCommitWindow = pc.GroupCommitWindow

	preload := func(srv *server.DBServer) {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"USE app",
			"CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(40))",
			"CREATE TABLE u (id BIGINT PRIMARY KEY, v VARCHAR(40))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				t.Fatalf("preload %s: %v", sql, err)
			}
		}
	}
	preload(mSrv)

	r := &rig{env: env, cloud: c, master: m}
	for i := 0; i < nSlaves; i++ {
		sInst := c.Launch(fmt.Sprintf("slave%d", i+1), cloud.Small, place)
		sSrv := server.New(env, fmt.Sprintf("slave%d", i+1), sInst, server.DefaultCostModel())
		preload(sSrv)
		sl := NewSlave(env, sSrv)
		m.Attach(sl, mSrv.Log.LastSeq())
		r.slaves = append(r.slaves, sl)
	}
	return r
}

// tableDump returns a server's table contents as a sorted, canonical
// string — the checksum the exactly-once assertions compare.
func tableDump(t *testing.T, srv *server.DBServer, table string) string {
	t.Helper()
	set, err := srv.Session("app").Query("SELECT id, v FROM " + table)
	if err != nil {
		t.Fatalf("dump %s: %v", table, err)
	}
	rows := make([]string, 0, len(set.Rows))
	for _, row := range set.Rows {
		rows = append(rows, fmt.Sprintf("%d=%s", row[0].Int(), row[1].String()))
	}
	sort.Strings(rows)
	return strings.Join(rows, ",")
}

func (r *rig) writeTo(t *testing.T, table string, id int, v string) {
	t.Helper()
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		if _, err := r.master.Srv.Exec(p, sess,
			"INSERT INTO "+table+" (id, v) VALUES (?, ?)",
			sqlengine.NewInt(int64(id)), sqlengine.NewString(v)); err != nil {
			t.Errorf("write %s: %v", table, err)
		}
	})
}

// Conflicting statements (same row, same table) must apply in commit order
// even with several workers: the final row value is the last write's.
func TestParallelApplyPreservesConflictOrder(t *testing.T) {
	r := newPipelineRig(t, 1, 2, Async, sameZone(), PipelineConfig{ApplyWorkers: 4})
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		if _, err := r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'v0')"); err != nil {
			t.Errorf("insert: %v", err)
		}
		for i := 1; i <= 20; i++ {
			if _, err := r.master.Srv.Exec(p, sess, "UPDATE t SET v = ? WHERE id = 1",
				sqlengine.NewString(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("update %d: %v", i, err)
			}
			// Interleave writes to the other table so workers have
			// something to reorder if the scheduler were broken.
			if _, err := r.master.Srv.Exec(p, sess, "INSERT INTO u (id, v) VALUES (?, 'x')",
				sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("insert u %d: %v", i, err)
			}
		}
	})
	r.env.RunUntil(2 * time.Minute)
	want := tableDump(t, r.master.Srv, "t")
	if !strings.Contains(want, "1=v20") {
		t.Fatalf("master final state unexpected: %s", want)
	}
	for i, sl := range r.slaves {
		if sl.ApplyErrors() != 0 {
			t.Fatalf("slave %d apply errors: %d", i, sl.ApplyErrors())
		}
		if got := tableDump(t, sl.Srv, "t"); got != want {
			t.Fatalf("slave %d t diverged:\n got %s\nwant %s", i, got, want)
		}
		if got, want := tableDump(t, sl.Srv, "u"), tableDump(t, r.master.Srv, "u"); got != want {
			t.Fatalf("slave %d u diverged:\n got %s\nwant %s", i, got, want)
		}
		if sl.AppliedSeq() != r.master.Srv.Log.LastSeq() {
			t.Fatalf("slave %d applied %d, master at %d", i, sl.AppliedSeq(), r.master.Srv.Log.LastSeq())
		}
	}
	r.env.Stop()
	r.env.Shutdown()
}

// A DDL statement mid-stream is a full barrier: writes to the new table
// dispatched after it must wait for it, on every worker.
func TestParallelApplyDDLBarrier(t *testing.T) {
	r := newPipelineRig(t, 2, 1, Async, sameZone(), PipelineConfig{ApplyWorkers: 4})
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'pre')", sqlengine.NewInt(int64(i)))
		}
		r.master.Srv.Exec(p, sess, "CREATE TABLE w (id BIGINT PRIMARY KEY, v VARCHAR(40))")
		for i := 0; i < 5; i++ {
			r.master.Srv.Exec(p, sess, "INSERT INTO w (id, v) VALUES (?, 'post')", sqlengine.NewInt(int64(i)))
		}
	})
	r.env.RunUntil(time.Minute)
	sl := r.slaves[0]
	if sl.ApplyErrors() != 0 {
		t.Fatalf("apply errors: %d (writes to w raced its CREATE TABLE?)", sl.ApplyErrors())
	}
	if got, want := tableDump(t, sl.Srv, "w"), tableDump(t, r.master.Srv, "w"); got != want {
		t.Fatalf("slave w diverged:\n got %s\nwant %s", got, want)
	}
	r.env.Stop()
	r.env.Shutdown()
}

// With client reads competing for the slave's CPU, K apply workers drain a
// relay backlog faster than the single SQL thread: they keep K requests in
// the instance's FIFO instead of one.
func TestParallelApplyDrainsFasterUnderReads(t *testing.T) {
	drain := func(workers int) sim.Time {
		// Batching is on in both arms: without it the io thread ingests one
		// entry per CPU-queue round trip on a read-loaded slave, so the
		// relay log never builds the backlog that lets apply workers
		// overlap. This isolates the apply stage as the variable.
		pc := PipelineConfig{BatchMaxEntries: 16, BatchMaxBytes: 64 << 10, ApplyWorkers: workers}
		r := newPipelineRig(t, 3, 1, Async, sameZone(), pc)
		sl := r.slaves[0]
		// Saturating read traffic on the slave, alternating tables so the
		// reads themselves are not the bottleneck under test.
		for c := 0; c < 6; c++ {
			sess := sl.Srv.Session("app")
			r.env.Go("reader", func(p *sim.Proc) {
				for {
					if _, err := sl.Srv.Exec(p, sess, "SELECT COUNT(*) FROM t"); err != nil {
						return
					}
				}
			})
		}
		// A burst of independent writes (disjoint rows across two tables).
		for i := 0; i < 30; i++ {
			tbl := "t"
			if i%2 == 0 {
				tbl = "u"
			}
			r.writeTo(t, tbl, i, "x")
		}
		var caughtUp sim.Time
		r.env.Go("watch", func(p *sim.Proc) {
			for sl.AppliedSeq() < 30 {
				p.Sleep(10 * time.Millisecond)
			}
			caughtUp = p.Now()
		})
		r.env.RunUntil(10 * time.Minute)
		if caughtUp == 0 {
			t.Fatalf("workers=%d never caught up (applied %d/30)", workers, sl.AppliedSeq())
		}
		r.env.Stop()
		r.env.Shutdown()
		return caughtUp
	}
	single := drain(1)
	parallel := drain(4)
	if parallel >= single {
		t.Fatalf("4 workers drained in %v, single thread in %v: expected parallel speedup", parallel, single)
	}
}

// Batched shipping coalesces a backlog into far fewer network transits
// without losing or reordering anything.
func TestBatchedShippingCoalescesBacklog(t *testing.T) {
	pc := PipelineConfig{BatchMaxEntries: 16, BatchMaxBytes: 64 << 10}
	r := newPipelineRig(t, 4, 1, Async, sameZone(), pc)
	for i := 0; i < 48; i++ {
		r.write(t, i, "v")
	}
	r.env.RunUntil(2 * time.Minute)
	sl := r.slaves[0]
	if got, want := tableDump(t, sl.Srv, "t"), tableDump(t, r.master.Srv, "t"); got != want {
		t.Fatalf("slave diverged:\n got %s\nwant %s", got, want)
	}
	st := r.master.Stats()
	if st.EntriesShipped != 48 {
		t.Fatalf("EntriesShipped = %d, want 48", st.EntriesShipped)
	}
	if st.BatchesShipped >= st.EntriesShipped {
		t.Fatalf("no coalescing: %d batches for %d entries", st.BatchesShipped, st.EntriesShipped)
	}
	r.env.Stop()
	r.env.Shutdown()
}

// An unloaded master must ship a lone write with the same latency whether
// batching is configured or not (flush-on-idle: batches of one).
func TestBatchingDoesNotDelayIdlemaster(t *testing.T) {
	applyTime := func(pc PipelineConfig) sim.Time {
		r := newPipelineRig(t, 5, 1, Async, sameZone(), pc)
		// The rig's preload already occupies the first binlog positions, so
		// wait for the write relative to the position before it.
		base := r.master.Srv.Log.LastSeq()
		r.write(t, 1, "only")
		var at sim.Time
		r.env.Go("watch", func(p *sim.Proc) {
			for r.slaves[0].AppliedSeq() < base+1 {
				p.Sleep(time.Millisecond)
			}
			at = p.Now()
		})
		r.env.RunUntil(time.Minute)
		r.env.Stop()
		r.env.Shutdown()
		return at
	}
	baseline := applyTime(PipelineConfig{})
	batched := applyTime(PipelineConfig{BatchMaxEntries: 32, BatchMaxBytes: 64 << 10})
	if baseline == 0 || batched == 0 {
		t.Fatal("write never applied")
	}
	if batched != baseline {
		t.Fatalf("idle-latency regression: batched %v vs baseline %v", batched, baseline)
	}
}

// The semi-sync degradation state machine: a timeout degrades the master
// (counted), later commits stop waiting, and a caught-up slave upgrades it
// back (MySQL rpl_semi_sync semantics).
func TestSemiSyncDegradationCountsAndReupgrades(t *testing.T) {
	r := newRig(t, 7, 1, SemiSync, diffRegion())
	r.master.SemiSyncTimeout = 50 * time.Millisecond // below the ≈173ms one-way latency
	sess := r.master.Srv.Session("app")

	var acks []bool
	var degradedElapsed time.Duration
	r.env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
			before := p.Now()
			ok := r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq())
			if i == 1 {
				degradedElapsed = time.Duration(p.Now() - before)
			}
			acks = append(acks, ok)
		}
	})
	r.env.RunUntil(30 * time.Second)

	if acks[0] || acks[1] || acks[2] {
		t.Fatalf("acks = %v, want all degraded", acks)
	}
	st := r.master.Stats()
	if st.DegradedCommits != 3 {
		t.Fatalf("DegradedCommits = %d, want 3", st.DegradedCommits)
	}
	if degradedElapsed != 0 {
		t.Fatalf("degraded commit waited %v, want immediate return", degradedElapsed)
	}

	// By now the slave has long received everything and acked the end of
	// the binlog: the master must have upgraded back.
	st = r.master.Stats()
	if st.Degraded {
		t.Fatal("master still degraded after slave caught up")
	}
	if st.Reupgrades != 1 {
		t.Fatalf("Reupgrades = %d, want 1", st.Reupgrades)
	}

	// With a timeout that accommodates the round trip, semi-sync works
	// again end to end.
	r.master.SemiSyncTimeout = 2 * time.Second
	var okAfter bool
	r.env.Go("writer2", func(p *sim.Proc) {
		r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (100, 'y')")
		okAfter = r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq())
	})
	r.env.RunUntil(40 * time.Second)
	if !okAfter {
		t.Fatal("semi-sync did not recover after re-upgrade")
	}
	if st := r.master.Stats(); st.DegradedCommits != 3 {
		t.Fatalf("recovered commit still counted degraded: %d", st.DegradedCommits)
	}
	r.env.Stop()
	r.env.Shutdown()
}

// Chaos × pipeline: a slave crash and a network partition in the middle of
// batched, parallel-applied replication must not lose or double-apply relay
// entries. Exactly-once is asserted by checksumming slave tables against
// the master (a double-applied INSERT would also surface as a primary-key
// apply error).
func TestPipelineChaosExactlyOnce(t *testing.T) {
	pc := PipelineConfig{BatchMaxEntries: 16, BatchMaxBytes: 64 << 10, ApplyWorkers: 4}
	r := newPipelineRig(t, 8, 2, Async, sameZone(), pc)

	sched := (&chaos.Schedule{}).
		CrashFor(2*time.Second, 3*time.Second, "slave1").
		PartitionFor(8*time.Second, 2*time.Second,
			cloud.Placement{Region: cloud.USWest1, Zone: "a"},
			cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	chaos.Start(r.env, r.cloud, sched)

	// A steady write stream spanning crash, partition and recovery.
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			tbl := "t"
			if i%3 == 0 {
				tbl = "u"
			}
			if _, err := r.master.Srv.Exec(p, sess,
				"INSERT INTO "+tbl+" (id, v) VALUES (?, ?)",
				sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			p.Sleep(100 * time.Millisecond)
		}
	})

	r.env.RunUntil(5 * time.Minute)
	last := r.master.Srv.Log.LastSeq()
	for i, sl := range r.slaves {
		if sl.ApplyErrors() != 0 {
			t.Fatalf("slave %d apply errors: %d (duplicate apply?)", i, sl.ApplyErrors())
		}
		if sl.AppliedSeq() != last {
			t.Fatalf("slave %d applied %d, master at %d (lost entries?)", i, sl.AppliedSeq(), last)
		}
		for _, tbl := range []string{"t", "u"} {
			if got, want := tableDump(t, sl.Srv, tbl), tableDump(t, r.master.Srv, tbl); got != want {
				t.Fatalf("slave %d table %s diverged after chaos:\n got %s\nwant %s", i, tbl, got, want)
			}
		}
	}
	r.env.Stop()
	r.env.Shutdown()
}
