// Package repl implements MySQL-style master-slave replication on top of
// the server, binlog and cloud packages.
//
// Per attached slave, the master runs a dump thread that tails the binlog
// and ships events over the (simulated) network in order. Each slave runs
// an I/O thread that appends received events to a relay log, and a single
// SQL applier thread that re-executes them against the slave's engine —
// competing with read traffic for the slave instance's CPU, which is the
// mechanism behind the paper's replication-delay blow-up near saturation.
//
// Three synchronization models are provided (§II of the paper): Async
// returns to the writer immediately after the master commit; SemiSync waits
// until at least one slave's I/O thread has the event in its relay log;
// Sync waits until every attached slave has applied the event.
package repl

import (
	"time"

	"cloudrepl/internal/binlog"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// Mode selects the synchronization model.
type Mode uint8

// Synchronization models.
const (
	Async Mode = iota
	SemiSync
	Sync
)

func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case SemiSync:
		return "semi-sync"
	default:
		return "sync"
	}
}

// PipelineConfig tunes the replication data path. The zero value is the
// legacy per-entry pipeline: no group commit, one network transit per
// binlog event, a single SQL applier thread per slave.
type PipelineConfig struct {
	// GroupCommitWindow enables master-side binlog group commit (see
	// server.DBServer.GroupCommitWindow); cluster wiring copies it onto
	// the master's server.
	GroupCommitWindow time.Duration
	// BatchMaxEntries caps how many binlog entries a dump thread coalesces
	// into one network transit (≤1 disables batching). The dump thread
	// never waits to fill a batch: it drains whatever backlog exists and
	// ships immediately, so an idle master keeps per-entry latency.
	BatchMaxEntries int
	// BatchMaxBytes additionally caps a batch by encoded wire size
	// (0 = no byte cap).
	BatchMaxBytes int
	// ApplyWorkers is the number of SQL applier threads per slave (≤1
	// keeps the single-threaded applier). Workers apply entries touching
	// disjoint tables concurrently; conflicting entries keep commit order
	// via table-level dependency tracking.
	ApplyWorkers int
}

// Master wraps a DBServer with replication state.
type Master struct {
	Srv  *server.DBServer
	Net  *cloud.Network
	Mode Mode
	// Epoch identifies this master's reign. Failover promotes a slave under
	// epoch+1, so session-consistency tokens minted as (epoch, seq) pairs
	// are never compared against a different master's sequence numbering.
	Epoch uint64
	// SemiSyncTimeout bounds the wait for a receipt acknowledgement before
	// degrading to asynchronous (MySQL's rpl_semi_sync behaviour). Zero
	// means wait forever.
	SemiSyncTimeout time.Duration
	// Pipeline tunes batching and parallel apply. Set it before Attach;
	// attached slaves keep the configuration they were wired with.
	Pipeline PipelineConfig

	// Tracer, when set, records "binlog" ship spans per dump-thread batch
	// and "apply" spans per applied entry, linked to the originating
	// write's span via the binlog sequence. Nil disables tracing.
	Tracer *obs.Tracer

	env      *sim.Env
	slaves   []*Slave
	ackCh    *sim.Signal // broadcast whenever any slave ack arrives
	detached map[*Slave]bool

	// Semi-sync degradation state (MySQL rpl_semi_sync): after a timeout
	// the master stops waiting per-commit and counts the commits it
	// acknowledged without a slave receipt; it upgrades back once a slave
	// acknowledges the current end of the binlog.
	degraded        bool
	degradedCommits uint64
	reupgrades      uint64

	batchesShipped uint64
	entriesShipped uint64
}

// Stats snapshots the master's replication-path counters.
type Stats struct {
	// Degraded reports whether semi-sync is currently degraded to async
	// (always false in Async and Sync modes).
	Degraded bool
	// DegradedCommits counts commits acknowledged without waiting for a
	// slave receipt — MySQL's Rpl_semi_sync_master_no_tx.
	DegradedCommits uint64
	// Reupgrades counts async→semi-sync recoveries after a slave caught
	// back up to the end of the binlog.
	Reupgrades uint64
	// BatchesShipped and EntriesShipped count dump-thread network transits
	// and the binlog entries they carried, summed over all slaves.
	BatchesShipped uint64
	EntriesShipped uint64
	// GroupCommits and GroupedWrites mirror the master server's group
	// commit counters (fsync groups formed and writes that joined one).
	GroupCommits  uint64
	GroupedWrites uint64
}

// SetTracer wires tr (which may be nil) into the master, its server and
// every attached slave's server, enabling end-to-end span collection.
func (m *Master) SetTracer(tr *obs.Tracer) {
	m.Tracer = tr
	m.Srv.Tracer = tr
	for _, sl := range m.Slaves() {
		sl.Srv.Tracer = tr
	}
}

// PublishMetrics snapshots the replication-path counters into reg under the
// "repl." prefix.
func (m *Master) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := m.Stats()
	reg.Counter("repl.degraded_commits").Set(float64(s.DegradedCommits))
	reg.Counter("repl.reupgrades").Set(float64(s.Reupgrades))
	reg.Counter("repl.batches_shipped").Set(float64(s.BatchesShipped))
	reg.Counter("repl.entries_shipped").Set(float64(s.EntriesShipped))
	reg.Counter("repl.group_commits").Set(float64(s.GroupCommits))
	reg.Counter("repl.grouped_writes").Set(float64(s.GroupedWrites))
	reg.Gauge("repl.slaves").Set(float64(len(m.Slaves())))
}

// Stats returns a snapshot of the replication-path counters.
func (m *Master) Stats() Stats {
	return Stats{
		Degraded:        m.degraded,
		DegradedCommits: m.degradedCommits,
		Reupgrades:      m.reupgrades,
		BatchesShipped:  m.batchesShipped,
		EntriesShipped:  m.entriesShipped,
		GroupCommits:    m.Srv.Stats().GroupCommits,
		GroupedWrites:   m.Srv.Stats().GroupedWrites,
	}
}

// NewMaster creates a replication master around srv.
func NewMaster(env *sim.Env, srv *server.DBServer, net *cloud.Network, mode Mode) *Master {
	return &Master{
		Srv: srv, Net: net, Mode: mode,
		env: env, ackCh: sim.NewSignal(env).Named("semisync-ack(" + srv.Name + ")"), detached: make(map[*Slave]bool),
	}
}

// Slaves returns the attached slaves.
func (m *Master) Slaves() []*Slave {
	out := make([]*Slave, 0, len(m.slaves))
	for _, sl := range m.slaves {
		if !m.detached[sl] {
			out = append(out, sl)
		}
	}
	return out
}

// ack is a slave acknowledgement message.
type ack struct {
	slave   *Slave
	seq     uint64
	applied bool // false = relay-log receipt, true = applied
}

// Slave is a replica server with its replication threads.
type Slave struct {
	Srv *server.DBServer

	master *Master
	io     *sim.Queue[[]binlog.Entry] // network delivery (batches) → I/O thread
	relay  *sim.Queue[binlog.Entry]   // relay log → SQL thread(s)

	receivedSeq uint64 // newest seq in relay log
	appliedSeq  uint64 // newest seq applied
	appliedTs   int64  // master timestamp of newest applied event
	appliedAt   sim.Time
	applyErrs   int
	stopped     bool

	// Master-side acknowledgement high-water marks.
	masterAckReceipt uint64
	masterAckApplied uint64
}

// NewSlave wraps srv as a replica.
func NewSlave(env *sim.Env, srv *server.DBServer) *Slave {
	return &Slave{
		Srv:   srv,
		io:    sim.NewQueue[[]binlog.Entry](env, srv.Name+"/io"),
		relay: sim.NewQueue[binlog.Entry](env, srv.Name+"/relay"),
	}
}

// ReceivedSeq returns the newest sequence in the relay log.
func (s *Slave) ReceivedSeq() uint64 { return s.receivedSeq }

// AppliedSeq returns the newest applied sequence.
func (s *Slave) AppliedSeq() uint64 { return s.appliedSeq }

// ApplyErrors returns the count of statements that failed to re-execute.
func (s *Slave) ApplyErrors() int { return s.applyErrs }

// RelayBacklog returns the number of received-but-unapplied events.
func (s *Slave) RelayBacklog() int { return s.relay.Len() }

// EventsBehindMaster reports replication lag as the master's binlog
// position minus this slave's applied position.
func (s *Slave) EventsBehindMaster() uint64 {
	if s.master == nil {
		return 0
	}
	last := s.master.Srv.Log.LastSeq()
	if last <= s.appliedSeq {
		return 0
	}
	return last - s.appliedSeq
}

// LastApplied returns the master timestamp (µs) carried by the newest
// applied event and the virtual time it was applied here — the raw
// material of MySQL's Seconds_Behind_Master estimate.
func (s *Slave) LastApplied() (masterTsMicros int64, appliedAt sim.Time) {
	return s.appliedTs, s.appliedAt
}

// Staleness reports how far behind the master this slave's state is at
// virtual time now: the age of the oldest master commit the slave has not
// yet applied, or zero when fully caught up. It grows monotonically while
// the applier is starved and collapses as the backlog drains — the quantity
// the heartbeat methodology estimates, measured here directly on the
// virtual timeline (no clock offset), which makes it usable as a control
// signal by the elastic controller.
func (s *Slave) Staleness(now sim.Time) time.Duration {
	if s.master == nil {
		return 0
	}
	log := s.master.Srv.Log
	if log.LastSeq() <= s.appliedSeq {
		return 0
	}
	d := now - log.CommittedAt(s.appliedSeq+1)
	if d < 0 {
		return 0
	}
	return d
}

// Stop halts the slave's replication threads after their current event.
func (s *Slave) Stop() {
	s.stopped = true
	s.io.Close()
	s.relay.Close()
}

// Attach connects sl to the master, starting the master-side dump thread
// and the slave-side I/O and SQL threads. Replication begins after binlog
// position startPos (use the master's current LastSeq for a freshly
// synchronized replica).
func (m *Master) Attach(sl *Slave, startPos uint64) {
	sl.master = m
	sl.receivedSeq = startPos
	sl.appliedSeq = startPos
	m.slaves = append(m.slaves, sl)

	pipe := cloud.NewPipe(m.Net, m.Srv.Inst.Place, sl.Srv.Inst.Place, sl.io)
	ackPipe := func(a ack) {
		// Acks ride the reverse path as datagrams; ordering between acks is
		// irrelevant and a partitioned path simply loses them (the master's
		// semi-sync timeout degrades the commit to async).
		cloud.Unicast(m.Net, sl.Srv.Inst.Place, m.Srv.Inst.Place, func() {
			m.deliverAck(a)
		})
	}

	maxEntries := m.Pipeline.BatchMaxEntries
	if maxEntries < 1 {
		maxEntries = 1
	}
	maxBytes := m.Pipeline.BatchMaxBytes

	reader := m.Srv.Log.NewReader(startPos)
	m.env.Go(m.Srv.Name+"/dump→"+sl.Srv.Name, func(p *sim.Proc) {
		for !sl.stopped && m.Srv.Up() {
			e := reader.Next(p)
			// The master may have died or the slave detached while the
			// reader was blocked at the log tail.
			if sl.stopped || !m.Srv.Up() {
				return
			}
			// Coalesce whatever backlog exists, up to the entry/byte caps,
			// into one transit. Never wait for more: an idle master ships
			// a batch of one immediately, so unloaded latency is the
			// per-entry path's.
			batch := []binlog.Entry{e}
			bytes := e.WireSize()
			for len(batch) < maxEntries && (maxBytes <= 0 || bytes < maxBytes) {
				next, ok := reader.TryNext()
				if !ok {
					break
				}
				batch = append(batch, next)
				bytes += next.WireSize()
			}
			// A ship span joins the trace of the write that committed the
			// batch's first entry (a mixed batch still records the other
			// writes' entries under its entries attribute).
			ssp := m.Tracer.StartLinked(p, "binlog", "ship", m.Tracer.SeqRef(batch[0].Seq))
			ssp.SetAttr("slave", sl.Srv.Name)
			ssp.SetAttrInt("entries", int64(len(batch)))
			ssp.SetAttrInt("first_seq", int64(batch[0].Seq))
			m.Srv.DumpBatchWork(p, len(batch))
			m.batchesShipped++
			m.entriesShipped += uint64(len(batch))
			pipe.Send(batch)
			ssp.End(p)
		}
	})

	m.env.Go(sl.Srv.Name+"/io", func(p *sim.Proc) {
		for {
			batch, ok := sl.io.Get(p)
			if !ok {
				return
			}
			// A crashed replica parks its I/O thread until the instance
			// restarts (relay-log writes resume with recovery), instead of
			// charging CPU on a dead VM.
			sl.Srv.Inst.AwaitUp(p)
			if sl.stopped {
				return
			}
			// Batched shipping, slave half: drain whatever further batches
			// are already queued on the socket and relay them under one
			// amortized CPU charge. Without this, a read-loaded slave
			// ingests one batch per CPU-queue round trip and the relay log
			// can never build the backlog parallel apply needs.
			if maxEntries > 1 || maxBytes > 0 {
				bytes := 0
				for _, e := range batch {
					bytes += e.WireSize()
				}
				for len(batch) < maxEntries && (maxBytes <= 0 || bytes < maxBytes) {
					more, any := sl.io.TryGet()
					if !any {
						break
					}
					for _, e := range more {
						batch = append(batch, e)
						bytes += e.WireSize()
					}
				}
			}
			sl.Srv.RelayBatchWork(p, len(batch))
			var last uint64
			for _, e := range batch {
				// Drop already-received entries (a reattach or retransmit
				// can replay the stream) so nothing enters the relay log —
				// and the appliers — twice.
				if e.Seq <= sl.receivedSeq {
					continue
				}
				sl.receivedSeq = e.Seq
				sl.relay.Put(e)
				last = e.Seq
			}
			if m.Mode == SemiSync && last > 0 {
				// One receipt for the whole batch: acknowledging the last
				// sequence covers every earlier one.
				ackPipe(ack{slave: sl, seq: last, applied: false})
			}
		}
	})

	if m.Pipeline.ApplyWorkers > 1 {
		m.startParallelApplier(sl, ackPipe, m.Pipeline.ApplyWorkers)
		return
	}
	sess := sl.Srv.Session("")
	m.env.Go(sl.Srv.Name+"/sql", func(p *sim.Proc) {
		for {
			e, ok := sl.relay.Get(p)
			if !ok {
				return
			}
			// Park across a crash; re-apply resumes from the relay log when
			// the instance comes back (the database layer retains state).
			sl.Srv.Inst.AwaitUp(p)
			if sl.stopped {
				return
			}
			asp := m.Tracer.StartLinked(p, "apply", "apply", m.Tracer.SeqRef(e.Seq))
			asp.SetAttr("slave", sl.Srv.Name)
			asp.SetAttrInt("seq", int64(e.Seq))
			if err := sl.Srv.Apply(p, sess, e); err != nil {
				sl.applyErrs++
				asp.SetAttr("error", "apply")
			}
			asp.End(p)
			// Replica MVCC stamps track master commit order: every applied
			// binlog sequence raises the engine's commit version, so
			// snapshots taken from a replica carry comparable versions.
			sl.Srv.Eng.AdvanceVersion(e.Seq)
			sl.appliedSeq = e.Seq
			sl.appliedTs = e.TimestampMicros
			sl.appliedAt = p.Now()
			if m.Mode == Sync {
				ackPipe(ack{slave: sl, seq: e.Seq, applied: true})
			}
		}
	})
}

// Detach removes a slave from the replication topology and stops its
// threads.
func (m *Master) Detach(sl *Slave) {
	m.detached[sl] = true
	sl.Stop()
	m.ackCh.Broadcast() // unblock sync waiters that counted this slave
}

// ackedReceipt / ackedApply track per-slave acknowledgement high-water
// marks on the master side.
func (m *Master) deliverAck(a ack) {
	if a.applied {
		if a.seq > a.slave.masterAckApplied {
			a.slave.masterAckApplied = a.seq
		}
	} else {
		if a.seq > a.slave.masterAckReceipt {
			a.slave.masterAckReceipt = a.seq
		}
	}
	// MySQL rpl_semi_sync recovery: degraded semi-sync upgrades back once
	// a slave acknowledges the current end of the binlog — not merely the
	// old position that timed out — so commits that raced ahead while
	// degraded are covered by the time waiting resumes.
	if m.degraded && !m.detached[a.slave] && a.seq >= m.Srv.Log.LastSeq() {
		m.degraded = false
		m.reupgrades++
	}
	m.ackCh.Broadcast()
}

// WaitCommitted blocks the calling process until the synchronization model
// considers binlog position seq committed: immediately for Async, first
// relay-log receipt for SemiSync, all slaves applied for Sync. It reports
// whether the wait fully satisfied the model. A semi-sync timeout degrades
// the master to async — this and every later commit return false without
// waiting (counted in Stats.DegradedCommits) until a slave catches back up
// to the end of the binlog and deliverAck re-upgrades the mode.
func (m *Master) WaitCommitted(p *sim.Proc, seq uint64) bool {
	switch m.Mode {
	case Async:
		return true
	case SemiSync:
		// While degraded, commits return immediately as unacknowledged
		// instead of re-paying the timeout each — MySQL's master stops
		// waiting after rpl_semi_sync_master_timeout fires and resumes
		// only via the deliverAck re-upgrade.
		if m.degraded {
			m.degradedCommits++
			return false
		}
		deadline := sim.MaxTime
		if m.SemiSyncTimeout > 0 {
			deadline = p.Now() + m.SemiSyncTimeout
		}
		for {
			for _, sl := range m.Slaves() {
				if sl.masterAckReceipt >= seq {
					return true
				}
			}
			if len(m.Slaves()) == 0 {
				m.degraded = true
				m.degradedCommits++
				return false
			}
			if m.SemiSyncTimeout > 0 {
				remain := deadline - p.Now()
				if remain <= 0 || !m.ackCh.WaitTimeout(p, remain) {
					m.degraded = true
					m.degradedCommits++
					return false
				}
			} else {
				m.ackCh.Wait(p)
			}
		}
	default: // Sync
		for {
			all := true
			for _, sl := range m.Slaves() {
				if sl.masterAckApplied < seq {
					all = false
					break
				}
			}
			if all {
				return true
			}
			m.ackCh.Wait(p)
		}
	}
}
