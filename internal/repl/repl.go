// Package repl implements MySQL-style master-slave replication on top of
// the server, binlog and cloud packages.
//
// Per attached slave, the master runs a dump thread that tails the binlog
// and ships events over the (simulated) network in order. Each slave runs
// an I/O thread that appends received events to a relay log, and a single
// SQL applier thread that re-executes them against the slave's engine —
// competing with read traffic for the slave instance's CPU, which is the
// mechanism behind the paper's replication-delay blow-up near saturation.
//
// Three synchronization models are provided (§II of the paper): Async
// returns to the writer immediately after the master commit; SemiSync waits
// until at least one slave's I/O thread has the event in its relay log;
// Sync waits until every attached slave has applied the event.
package repl

import (
	"time"

	"cloudrepl/internal/binlog"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// Mode selects the synchronization model.
type Mode uint8

// Synchronization models.
const (
	Async Mode = iota
	SemiSync
	Sync
)

func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case SemiSync:
		return "semi-sync"
	default:
		return "sync"
	}
}

// Master wraps a DBServer with replication state.
type Master struct {
	Srv  *server.DBServer
	Net  *cloud.Network
	Mode Mode
	// SemiSyncTimeout bounds the wait for a receipt acknowledgement before
	// degrading to asynchronous for that commit (MySQL's rpl_semi_sync
	// behaviour). Zero means wait forever.
	SemiSyncTimeout time.Duration

	env      *sim.Env
	slaves   []*Slave
	ackCh    *sim.Signal // broadcast whenever any slave ack arrives
	detached map[*Slave]bool
}

// NewMaster creates a replication master around srv.
func NewMaster(env *sim.Env, srv *server.DBServer, net *cloud.Network, mode Mode) *Master {
	return &Master{
		Srv: srv, Net: net, Mode: mode,
		env: env, ackCh: sim.NewSignal(env), detached: make(map[*Slave]bool),
	}
}

// Slaves returns the attached slaves.
func (m *Master) Slaves() []*Slave {
	out := make([]*Slave, 0, len(m.slaves))
	for _, sl := range m.slaves {
		if !m.detached[sl] {
			out = append(out, sl)
		}
	}
	return out
}

// ack is a slave acknowledgement message.
type ack struct {
	slave   *Slave
	seq     uint64
	applied bool // false = relay-log receipt, true = applied
}

// Slave is a replica server with its replication threads.
type Slave struct {
	Srv *server.DBServer

	master *Master
	io     *sim.Queue[binlog.Entry] // network delivery → I/O thread
	relay  *sim.Queue[binlog.Entry] // relay log → SQL thread

	receivedSeq uint64 // newest seq in relay log
	appliedSeq  uint64 // newest seq applied
	appliedTs   int64  // master timestamp of newest applied event
	appliedAt   sim.Time
	applyErrs   int
	stopped     bool

	// Master-side acknowledgement high-water marks.
	masterAckReceipt uint64
	masterAckApplied uint64
}

// NewSlave wraps srv as a replica.
func NewSlave(env *sim.Env, srv *server.DBServer) *Slave {
	return &Slave{
		Srv:   srv,
		io:    sim.NewQueue[binlog.Entry](env, srv.Name+"/io"),
		relay: sim.NewQueue[binlog.Entry](env, srv.Name+"/relay"),
	}
}

// ReceivedSeq returns the newest sequence in the relay log.
func (s *Slave) ReceivedSeq() uint64 { return s.receivedSeq }

// AppliedSeq returns the newest applied sequence.
func (s *Slave) AppliedSeq() uint64 { return s.appliedSeq }

// ApplyErrors returns the count of statements that failed to re-execute.
func (s *Slave) ApplyErrors() int { return s.applyErrs }

// RelayBacklog returns the number of received-but-unapplied events.
func (s *Slave) RelayBacklog() int { return s.relay.Len() }

// EventsBehindMaster reports replication lag as the master's binlog
// position minus this slave's applied position.
func (s *Slave) EventsBehindMaster() uint64 {
	if s.master == nil {
		return 0
	}
	last := s.master.Srv.Log.LastSeq()
	if last <= s.appliedSeq {
		return 0
	}
	return last - s.appliedSeq
}

// LastApplied returns the master timestamp (µs) carried by the newest
// applied event and the virtual time it was applied here — the raw
// material of MySQL's Seconds_Behind_Master estimate.
func (s *Slave) LastApplied() (masterTsMicros int64, appliedAt sim.Time) {
	return s.appliedTs, s.appliedAt
}

// Staleness reports how far behind the master this slave's state is at
// virtual time now: the age of the oldest master commit the slave has not
// yet applied, or zero when fully caught up. It grows monotonically while
// the applier is starved and collapses as the backlog drains — the quantity
// the heartbeat methodology estimates, measured here directly on the
// virtual timeline (no clock offset), which makes it usable as a control
// signal by the elastic controller.
func (s *Slave) Staleness(now sim.Time) time.Duration {
	if s.master == nil {
		return 0
	}
	log := s.master.Srv.Log
	if log.LastSeq() <= s.appliedSeq {
		return 0
	}
	d := now - log.CommittedAt(s.appliedSeq+1)
	if d < 0 {
		return 0
	}
	return d
}

// Stop halts the slave's replication threads after their current event.
func (s *Slave) Stop() {
	s.stopped = true
	s.io.Close()
	s.relay.Close()
}

// Attach connects sl to the master, starting the master-side dump thread
// and the slave-side I/O and SQL threads. Replication begins after binlog
// position startPos (use the master's current LastSeq for a freshly
// synchronized replica).
func (m *Master) Attach(sl *Slave, startPos uint64) {
	sl.master = m
	sl.receivedSeq = startPos
	sl.appliedSeq = startPos
	m.slaves = append(m.slaves, sl)

	pipe := cloud.NewPipe(m.Net, m.Srv.Inst.Place, sl.Srv.Inst.Place, sl.io)
	ackPipe := func(a ack) {
		// Acks ride the reverse path as datagrams; ordering between acks is
		// irrelevant and a partitioned path simply loses them (the master's
		// semi-sync timeout degrades the commit to async).
		cloud.Unicast(m.Net, sl.Srv.Inst.Place, m.Srv.Inst.Place, func() {
			m.deliverAck(a)
		})
	}

	reader := m.Srv.Log.NewReader(startPos)
	m.env.Go(m.Srv.Name+"/dump→"+sl.Srv.Name, func(p *sim.Proc) {
		for !sl.stopped && m.Srv.Up() {
			e := reader.Next(p)
			// The master may have died or the slave detached while the
			// reader was blocked at the log tail.
			if sl.stopped || !m.Srv.Up() {
				return
			}
			m.Srv.DumpWork(p)
			pipe.Send(e)
		}
	})

	m.env.Go(sl.Srv.Name+"/io", func(p *sim.Proc) {
		for {
			e, ok := sl.io.Get(p)
			if !ok {
				return
			}
			// A crashed replica parks its I/O thread until the instance
			// restarts (relay-log writes resume with recovery), instead of
			// charging CPU on a dead VM.
			sl.Srv.Inst.AwaitUp(p)
			if sl.stopped {
				return
			}
			sl.Srv.RelayWork(p)
			sl.receivedSeq = e.Seq
			sl.relay.Put(e)
			if m.Mode == SemiSync {
				ackPipe(ack{slave: sl, seq: e.Seq, applied: false})
			}
		}
	})

	sess := sl.Srv.Session("")
	m.env.Go(sl.Srv.Name+"/sql", func(p *sim.Proc) {
		for {
			e, ok := sl.relay.Get(p)
			if !ok {
				return
			}
			// Park across a crash; re-apply resumes from the relay log when
			// the instance comes back (the database layer retains state).
			sl.Srv.Inst.AwaitUp(p)
			if sl.stopped {
				return
			}
			if err := sl.Srv.Apply(p, sess, e); err != nil {
				sl.applyErrs++
			}
			sl.appliedSeq = e.Seq
			sl.appliedTs = e.TimestampMicros
			sl.appliedAt = p.Now()
			if m.Mode == Sync {
				ackPipe(ack{slave: sl, seq: e.Seq, applied: true})
			}
		}
	})
}

// Detach removes a slave from the replication topology and stops its
// threads.
func (m *Master) Detach(sl *Slave) {
	m.detached[sl] = true
	sl.Stop()
	m.ackCh.Broadcast() // unblock sync waiters that counted this slave
}

// ackedReceipt / ackedApply track per-slave acknowledgement high-water
// marks on the master side.
func (m *Master) deliverAck(a ack) {
	if a.applied {
		if a.seq > a.slave.masterAckApplied {
			a.slave.masterAckApplied = a.seq
		}
	} else {
		if a.seq > a.slave.masterAckReceipt {
			a.slave.masterAckReceipt = a.seq
		}
	}
	m.ackCh.Broadcast()
}

// WaitCommitted blocks the calling process until the synchronization model
// considers binlog position seq committed: immediately for Async, first
// relay-log receipt for SemiSync (degrading to async after the timeout),
// all slaves applied for Sync. It reports whether the wait fully satisfied
// the model (false = semi-sync timeout degradation).
func (m *Master) WaitCommitted(p *sim.Proc, seq uint64) bool {
	switch m.Mode {
	case Async:
		return true
	case SemiSync:
		deadline := sim.MaxTime
		if m.SemiSyncTimeout > 0 {
			deadline = p.Now() + m.SemiSyncTimeout
		}
		for {
			for _, sl := range m.Slaves() {
				if sl.masterAckReceipt >= seq {
					return true
				}
			}
			if len(m.Slaves()) == 0 {
				return false
			}
			if m.SemiSyncTimeout > 0 {
				remain := deadline - p.Now()
				if remain <= 0 || !m.ackCh.WaitTimeout(p, remain) {
					return false
				}
			} else {
				m.ackCh.Wait(p)
			}
		}
	default: // Sync
		for {
			all := true
			for _, sl := range m.Slaves() {
				if sl.masterAckApplied < seq {
					all = false
					break
				}
			}
			if all {
				return true
			}
			m.ackCh.Wait(p)
		}
	}
}
