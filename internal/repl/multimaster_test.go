package repl

import (
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func mmRig(t *testing.T, seed int64, nNodes int) (*sim.Env, *MultiMaster) {
	t.Helper()
	env := sim.NewEnv(seed)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	var servers []*server.DBServer
	for i := 0; i < nNodes; i++ {
		srv := server.New(env, fmt.Sprintf("node%d", i), c.Launch(fmt.Sprintf("node%d", i), cloud.Small, place), server.DefaultCostModel())
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.kv (k BIGINT PRIMARY KEY, v VARCHAR(40))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				t.Fatal(err)
			}
		}
		servers = append(servers, srv)
	}
	return env, NewMultiMaster(env, c.Network(), servers, place)
}

func TestMultiMasterAllNodesAcceptWrites(t *testing.T) {
	env, mm := mmRig(t, 1, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("client", func(p *sim.Proc) {
			if err := mm.Node(i).ExecWrite(p, "app", "INSERT INTO kv (k, v) VALUES (?, ?)",
				sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("from-node-%d", i))); err != nil {
				t.Errorf("write on node %d: %v", i, err)
			}
		})
	}
	env.RunUntil(time.Minute)
	for i, n := range mm.Nodes() {
		set, err := n.Srv.Session("app").Query("SELECT COUNT(*) FROM kv")
		if err != nil {
			t.Fatal(err)
		}
		if set.Rows[0][0].Int() != 3 {
			t.Fatalf("node %d has %v rows, want all 3 writes", i, set.Rows[0][0])
		}
		if n.ApplyErrors() != 0 {
			t.Fatalf("node %d apply errors: %d", i, n.ApplyErrors())
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestMultiMasterConflictsResolveIdentically(t *testing.T) {
	// Two nodes write the same key "concurrently": the total order decides
	// the winner and every node must agree on it.
	env, mm := mmRig(t, 2, 3)
	for i := 0; i < 2; i++ {
		i := i
		env.Go("client", func(p *sim.Proc) {
			mm.Node(i).ExecWrite(p, "app", "INSERT INTO kv (k, v) VALUES (1, ?)",
				sqlengine.NewString(fmt.Sprintf("writer-%d", i)))
		})
	}
	env.RunUntil(time.Minute)
	var winner string
	for i, n := range mm.Nodes() {
		set, err := n.Srv.Session("app").Query("SELECT v FROM kv WHERE k = 1")
		if err != nil || len(set.Rows) != 1 {
			t.Fatalf("node %d: %v %v", i, set, err)
		}
		v := set.Rows[0][0].Str()
		if winner == "" {
			winner = v
		} else if v != winner {
			t.Fatalf("nodes disagree on conflict winner: %q vs %q", v, winner)
		}
	}
	// Exactly one of the two conflicting inserts succeeded; the other got
	// a duplicate-key error on every node consistently.
	totalErrs := 0
	for _, n := range mm.Nodes() {
		totalErrs += n.ApplyErrors()
	}
	if totalErrs != len(mm.Nodes()) {
		t.Fatalf("apply errors = %d, want exactly one failed statement per node", totalErrs)
	}
	env.Stop()
	env.Shutdown()
}

func TestMultiMasterReadYourWrites(t *testing.T) {
	env, mm := mmRig(t, 3, 2)
	env.Go("client", func(p *sim.Proc) {
		n := mm.Node(1)
		if err := n.ExecWrite(p, "app", "INSERT INTO kv (k, v) VALUES (42, 'mine')"); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// ExecWrite returns only after local apply: the next local read
		// must see it.
		set, err := n.ExecRead(p, "app", "SELECT v FROM kv WHERE k = 42")
		if err != nil || len(set.Rows) != 1 {
			t.Errorf("read-your-writes violated: %v %v", set, err)
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestMultiMasterWriteLatencyIncludesOrderingRoundTrip(t *testing.T) {
	// A node in eu-west writing through a us-west sequencer pays at least
	// origin→sequencer + sequencer→origin (2 × 173 ms).
	env := sim.NewEnv(4)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	us := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	eu := cloud.Placement{Region: cloud.EUWest1, Zone: "a"}
	var servers []*server.DBServer
	for i, pl := range []cloud.Placement{us, eu} {
		srv := server.New(env, fmt.Sprintf("node%d", i), c.Launch(fmt.Sprintf("node%d", i), cloud.Small, pl), server.DefaultCostModel())
		sess := srv.Session("")
		srv.ExecFree(sess, "CREATE DATABASE app")
		srv.ExecFree(sess, "CREATE TABLE app.kv (k BIGINT PRIMARY KEY)")
		servers = append(servers, srv)
	}
	mm := NewMultiMaster(env, c.Network(), servers, us)
	var took sim.Time
	env.Go("client", func(p *sim.Proc) {
		start := p.Now()
		if err := mm.Node(1).ExecWrite(p, "app", "INSERT INTO kv (k) VALUES (1)"); err != nil {
			t.Errorf("write: %v", err)
		}
		took = p.Now() - start
	})
	env.RunUntil(time.Minute)
	if took < 346*time.Millisecond {
		t.Fatalf("cross-region multi-master write took %v, below the ordering round trip", took)
	}
	env.Stop()
	env.Shutdown()
}

func TestMultiMasterWriteAmplification(t *testing.T) {
	// Every node applies every write: after W writes, each node's engine
	// must have executed W write statements.
	env, mm := mmRig(t, 5, 3)
	const writes = 10
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			mm.Node(i%3).ExecWrite(p, "app", "INSERT INTO kv (k, v) VALUES (?, 'x')",
				sqlengine.NewInt(int64(i)))
		}
	})
	env.RunUntil(time.Minute)
	for i, n := range mm.Nodes() {
		set, _ := n.Srv.Session("app").Query("SELECT COUNT(*) FROM kv")
		if set.Rows[0][0].Int() != writes {
			t.Fatalf("node %d applied %v of %d writes", i, set.Rows[0][0], writes)
		}
	}
	env.Stop()
	env.Shutdown()
}
