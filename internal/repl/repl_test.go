package repl

import (
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// rig is a master + N slaves test topology with a preloaded schema.
type rig struct {
	env    *sim.Env
	cloud  *cloud.Cloud
	master *Master
	slaves []*Slave
}

func newRig(t *testing.T, seed int64, nSlaves int, mode Mode, slavePlace cloud.Placement) *rig {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{}) // deterministic: homogeneous, perfect clocks
	masterPlace := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	mInst := c.Launch("master", cloud.Small, masterPlace)
	mSrv := server.New(env, "master", mInst, server.DefaultCostModel())
	m := NewMaster(env, mSrv, c.Network(), mode)

	preload := func(srv *server.DBServer) {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"USE app",
			"CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(40))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				t.Fatalf("preload %s: %v", sql, err)
			}
		}
	}
	preload(mSrv)

	r := &rig{env: env, cloud: c, master: m}
	for i := 0; i < nSlaves; i++ {
		sInst := c.Launch(fmt.Sprintf("slave%d", i+1), cloud.Small, slavePlace)
		sSrv := server.New(env, fmt.Sprintf("slave%d", i+1), sInst, server.DefaultCostModel())
		preload(sSrv)
		sl := NewSlave(env, sSrv)
		m.Attach(sl, mSrv.Log.LastSeq()) // fully synchronized start
		r.slaves = append(r.slaves, sl)
	}
	return r
}

func sameZone() cloud.Placement { return cloud.Placement{Region: cloud.USWest1, Zone: "a"} }
func diffRegion() cloud.Placement {
	return cloud.Placement{Region: cloud.EUWest1, Zone: "a"}
}

func (r *rig) write(t *testing.T, id int, v string) {
	t.Helper()
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		if _, err := r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, ?)",
			sqlengine.NewInt(int64(id)), sqlengine.NewString(v)); err != nil {
			t.Errorf("write: %v", err)
		}
	})
}

func (r *rig) slaveCount(t *testing.T, sl *Slave) int64 {
	t.Helper()
	set, err := sl.Srv.Session("app").Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	return set.Rows[0][0].Int()
}

func TestAsyncReplicationDeliversAllWrites(t *testing.T) {
	r := newRig(t, 1, 3, Async, sameZone())
	for i := 0; i < 20; i++ {
		r.write(t, i, "v")
	}
	r.env.RunUntil(time.Minute)
	for i, sl := range r.slaves {
		if n := r.slaveCount(t, sl); n != 20 {
			t.Fatalf("slave %d has %d rows, want 20", i, n)
		}
		if sl.ApplyErrors() != 0 {
			t.Fatalf("slave %d apply errors: %d", i, sl.ApplyErrors())
		}
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestReplicationPreservesStatementOrder(t *testing.T) {
	r := newRig(t, 2, 1, Async, sameZone())
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'a')")
		r.master.Srv.Exec(p, sess, "UPDATE t SET v = 'b' WHERE id = 1")
		r.master.Srv.Exec(p, sess, "UPDATE t SET v = CONCAT(v, 'c') WHERE id = 1")
	})
	r.env.RunUntil(time.Minute)
	set, err := r.slaves[0].Srv.Session("app").Query("SELECT v FROM t WHERE id = 1")
	if err != nil || len(set.Rows) != 1 {
		t.Fatalf("slave row: %v %v", set, err)
	}
	if got := set.Rows[0][0].Str(); got != "bc" {
		t.Fatalf("slave value %q: statements reordered or lost", got)
	}
	r.env.Shutdown()
}

func TestReplicationDelayIncludesNetworkLatency(t *testing.T) {
	// Same-zone and cross-region slaves receive the same write; the
	// cross-region slave applies it ≈157ms later (173ms vs 16ms one-way).
	env := sim.NewEnv(3)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	mSrv := server.New(env, "master", c.Launch("m", cloud.Small, sameZone()), server.DefaultCostModel())
	m := NewMaster(env, mSrv, c.Network(), Async)
	var slaves []*Slave
	for i, pl := range []cloud.Placement{sameZone(), diffRegion()} {
		srv := server.New(env, fmt.Sprintf("s%d", i), c.Launch(fmt.Sprintf("s%d", i), cloud.Small, pl), server.DefaultCostModel())
		for _, sql := range []string{"CREATE DATABASE app", "CREATE TABLE app.t (id BIGINT PRIMARY KEY)"} {
			if _, err := srv.ExecFree(srv.Session(""), sql); err != nil {
				t.Fatal(err)
			}
		}
		sl := NewSlave(env, srv)
		slaves = append(slaves, sl)
	}
	for _, sql := range []string{"CREATE DATABASE app", "CREATE TABLE app.t (id BIGINT PRIMARY KEY)"} {
		if _, err := mSrv.ExecFree(mSrv.Session(""), sql); err != nil {
			t.Fatal(err)
		}
	}
	for _, sl := range slaves {
		m.Attach(sl, mSrv.Log.LastSeq())
	}
	sess := mSrv.Session("app")
	env.Go("writer", func(p *sim.Proc) {
		mSrv.Exec(p, sess, "INSERT INTO t (id) VALUES (1)")
	})
	env.RunUntil(5 * time.Second)
	near, far := slaves[0].appliedAt, slaves[1].appliedAt
	if near == 0 || far == 0 {
		t.Fatal("writes not applied")
	}
	gap := far - near
	want := 173*time.Millisecond - 16*time.Millisecond
	if gap < want-5*time.Millisecond || gap > want+20*time.Millisecond {
		t.Fatalf("cross-region apply gap %v, want ≈%v", gap, want)
	}
	env.Shutdown()
}

func TestSingleApplierSerializesBehindReads(t *testing.T) {
	// Saturate the slave CPU with read work; the relay backlog must grow
	// because the single SQL thread competes for the same core.
	r := newRig(t, 4, 1, Async, sameZone())
	sl := r.slaves[0]
	// Several concurrent readers keep the slave's FIFO CPU queue full, so
	// the single SQL thread waits behind a queue of reads for every apply.
	for i := 0; i < 5; i++ {
		readSess := sl.Srv.Session("app")
		r.env.Go("readhog", func(p *sim.Proc) {
			for p.Now() < 30*time.Second {
				sl.Srv.Exec(p, readSess, "SELECT COUNT(*) FROM t")
			}
		})
	}
	wSess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		for i := 0; p.Now() < 20*time.Second; i++ {
			r.master.Srv.Exec(p, wSess, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
			p.Sleep(10 * time.Millisecond)
		}
	})
	r.env.RunUntil(15 * time.Second)
	behindUnderLoad := sl.EventsBehindMaster()
	r.env.RunUntil(2 * time.Minute) // reads stop at 30s; slave catches up
	if behindUnderLoad < 3 {
		t.Fatalf("slave only %d events behind under read saturation; applier contention not modeled", behindUnderLoad)
	}
	if sl.EventsBehindMaster() != 0 {
		t.Fatalf("slave still %d behind after load stopped", sl.EventsBehindMaster())
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestSyncModeWaitsForAllSlaves(t *testing.T) {
	r := newRig(t, 5, 2, Sync, diffRegion())
	sess := r.master.Srv.Session("app")
	var commitDone sim.Time
	r.env.Go("writer", func(p *sim.Proc) {
		res, err := r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		if err != nil {
			t.Errorf("exec: %v", err)
			return
		}
		_ = res
		if !r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq()) {
			t.Error("sync wait failed")
		}
		commitDone = p.Now()
	})
	r.env.RunUntil(time.Minute)
	// Sync over a 173ms one-way link: commit ≥ 2×173ms plus service times.
	if commitDone < 346*time.Millisecond {
		t.Fatalf("sync commit returned at %v, faster than a cross-region round trip", commitDone)
	}
	for _, sl := range r.slaves {
		if n := r.slaveCount(t, sl); n != 1 {
			t.Fatal("sync commit returned before slave applied")
		}
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestSemiSyncWaitsForFirstReceipt(t *testing.T) {
	r := newRig(t, 6, 2, SemiSync, diffRegion())
	sess := r.master.Srv.Session("app")
	var done sim.Time
	var okAck bool
	r.env.Go("writer", func(p *sim.Proc) {
		r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		okAck = r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq())
		done = p.Now()
	})
	r.env.RunUntil(time.Minute)
	if !okAck {
		t.Fatal("semi-sync ack not received")
	}
	if done < 346*time.Millisecond {
		t.Fatalf("semi-sync returned at %v, faster than the ack round trip", done)
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestSemiSyncTimeoutDegradesToAsync(t *testing.T) {
	r := newRig(t, 7, 1, SemiSync, diffRegion())
	r.master.SemiSyncTimeout = 50 * time.Millisecond // below the 173ms one-way latency
	sess := r.master.Srv.Session("app")
	var okAck bool
	var done sim.Time
	r.env.Go("writer", func(p *sim.Proc) {
		r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		okAck = r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq())
		done = p.Now()
	})
	r.env.RunUntil(time.Minute)
	if okAck {
		t.Fatal("expected semi-sync timeout degradation")
	}
	if done > time.Second {
		t.Fatalf("degradation took %v, should time out at ≈50ms after the write", done)
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestAsyncCommitDoesNotWait(t *testing.T) {
	r := newRig(t, 8, 2, Async, diffRegion())
	sess := r.master.Srv.Session("app")
	var done sim.Time
	r.env.Go("writer", func(p *sim.Proc) {
		r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		if !r.master.WaitCommitted(p, r.master.Srv.Log.LastSeq()) {
			t.Error("async wait must trivially succeed")
		}
		done = p.Now()
	})
	r.env.RunUntil(time.Minute)
	if done > 200*time.Millisecond {
		t.Fatalf("async commit waited %v", done)
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestDetachStopsReplication(t *testing.T) {
	r := newRig(t, 9, 2, Async, sameZone())
	r.write(t, 1, "before")
	r.env.RunUntil(10 * time.Second)
	victim := r.slaves[0]
	r.master.Detach(victim)
	if len(r.master.Slaves()) != 1 {
		t.Fatalf("slaves after detach: %d", len(r.master.Slaves()))
	}
	r.write(t, 2, "after")
	r.env.RunUntil(30 * time.Second)
	if n := r.slaveCount(t, victim); n != 1 {
		t.Fatalf("detached slave has %d rows, want 1 (only pre-detach write)", n)
	}
	if n := r.slaveCount(t, r.slaves[1]); n != 2 {
		t.Fatalf("remaining slave has %d rows, want 2", n)
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestLateAttachingSlaveCatchesUp(t *testing.T) {
	r := newRig(t, 10, 1, Async, sameZone())
	for i := 0; i < 5; i++ {
		r.write(t, i, "early")
	}
	r.env.RunUntil(10 * time.Second)
	// New slave starts from position 0: replays the entire binlog,
	// including the master's preload DDL, on an empty server.
	sInst := r.cloud.Launch("late", cloud.Small, sameZone())
	sSrv := server.New(r.env, "late", sInst, server.DefaultCostModel())
	late := NewSlave(r.env, sSrv)
	r.master.Attach(late, 0)
	r.env.RunUntil(time.Minute)
	set, err := sSrv.Session("app").Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("late slave: %v", err)
	}
	if n := set.Rows[0][0].Int(); n != 5 {
		t.Fatalf("late slave has %d rows, want 5", n)
	}
	if late.ApplyErrors() != 0 {
		t.Fatalf("late slave apply errors: %d", late.ApplyErrors())
	}
	r.env.Stop()
	r.env.Shutdown()
}

func TestEventsBehindMaster(t *testing.T) {
	r := newRig(t, 11, 1, Async, sameZone())
	if r.slaves[0].EventsBehindMaster() != 0 {
		t.Fatal("fresh slave reports lag")
	}
	r.write(t, 1, "x")
	// Before running the simulation, the binlog has the entry but the
	// write process hasn't even executed: run a tiny slice.
	r.env.RunUntil(100 * time.Millisecond)
	r.env.RunUntil(time.Minute)
	if r.slaves[0].EventsBehindMaster() != 0 {
		t.Fatal("slave still behind after quiesce")
	}
	r.env.Stop()
	r.env.Shutdown()
}

// TestReplicationConvergenceProperty is the core statement-based
// replication invariant: for a random mix of inserts, updates and deletes
// on the master, every slave's deterministic column state equals the
// master's after quiesce. (Timestamp columns evaluated via UTC_MICROS are
// intentionally excluded: statement-based re-execution commits each
// replica's local time — that is the paper's measurement mechanism, not a
// divergence bug.)
func TestReplicationConvergenceProperty(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		r := newRig(t, seed, 2, Async, sameZone())
		sess := r.master.Srv.Session("app")
		r.env.Go("chaos", func(p *sim.Proc) {
			rng := p.Rand()
			for i := 0; i < 150; i++ {
				k := rng.Intn(40)
				switch rng.Intn(4) {
				case 0, 1:
					r.master.Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, ?)",
						sqlengine.NewInt(int64(k)), sqlengine.NewString(fmt.Sprintf("v%d", i)))
				case 2:
					r.master.Srv.Exec(p, sess, "UPDATE t SET v = CONCAT(v, '+') WHERE id = ?",
						sqlengine.NewInt(int64(k)))
				default:
					r.master.Srv.Exec(p, sess, "DELETE FROM t WHERE id = ?",
						sqlengine.NewInt(int64(k)))
				}
				p.Sleep(sim.Exp(rng, 300*time.Millisecond))
			}
		})
		r.env.RunUntil(5 * time.Minute)

		dump := func(srv interface {
			Session(string) *sqlengine.Session
		}) string {
			set, err := srv.Session("app").Query("SELECT id, v FROM t ORDER BY id")
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, row := range set.Rows {
				out += fmt.Sprintf("%v=%v;", row[0], row[1])
			}
			return out
		}
		want := dump(r.master.Srv)
		for i, sl := range r.slaves {
			if got := dump(sl.Srv); got != want {
				t.Fatalf("seed %d slave %d diverged:\n master: %s\n slave:  %s", seed, i, want, got)
			}
			if sl.ApplyErrors() != 0 {
				// Duplicate-key errors from racing inserts replicate as
				// no-ops; they must be identical failures, not divergence.
				t.Logf("seed %d slave %d apply errors: %d", seed, i, sl.ApplyErrors())
			}
		}
		r.env.Stop()
		r.env.Shutdown()
	}
}

// TestSlaveRestartReattachesAtPosition simulates a replica crash: its
// replication threads die with the relay backlog, and on restart a new
// Slave wrapper re-attaches at the last applied position, replaying only
// what it missed.
func TestSlaveRestartReattachesAtPosition(t *testing.T) {
	r := newRig(t, 12, 1, Async, sameZone())
	victim := r.slaves[0]
	for i := 0; i < 5; i++ {
		r.write(t, i, "before")
	}
	r.env.RunUntil(10 * time.Second)
	if victim.AppliedSeq() == 0 {
		t.Fatal("nothing applied before crash")
	}
	crashPos := victim.AppliedSeq()
	r.master.Detach(victim) // crash: threads stop, relay lost

	for i := 10; i < 15; i++ {
		r.write(t, i, "while-down")
	}
	r.env.RunUntil(20 * time.Second)

	// Restart: same server state, new replication threads from crashPos.
	revived := NewSlave(r.env, victim.Srv)
	r.master.Attach(revived, crashPos)
	for i := 20; i < 23; i++ {
		r.write(t, i, "after")
	}
	r.env.RunUntil(time.Minute)
	if n := r.slaveCount(t, revived); n != 13 {
		t.Fatalf("revived slave has %d rows, want 13 (5+5+3)", n)
	}
	if revived.ApplyErrors() != 0 {
		t.Fatalf("apply errors after restart: %d", revived.ApplyErrors())
	}
	r.env.Stop()
	r.env.Shutdown()
}

// TestTransactionReplicatesAtomicallyInOrder: statements buffered inside
// BEGIN/COMMIT reach the binlog only at commit, in execution order, and a
// rolled-back transaction never replicates.
func TestTransactionReplicatesAtomicallyInOrder(t *testing.T) {
	r := newRig(t, 13, 1, Async, sameZone())
	sess := r.master.Srv.Session("app")
	r.env.Go("writer", func(p *sim.Proc) {
		exec := func(sql string) {
			if _, err := r.master.Srv.Exec(p, sess, sql); err != nil {
				t.Errorf("%s: %v", sql, err)
			}
		}
		exec("BEGIN")
		exec("INSERT INTO t (id, v) VALUES (1, 'a')")
		exec("UPDATE t SET v = CONCAT(v, 'b') WHERE id = 1")
		exec("COMMIT")
		exec("BEGIN")
		exec("INSERT INTO t (id, v) VALUES (2, 'doomed')")
		exec("ROLLBACK")
	})
	r.env.RunUntil(time.Minute)
	sl := r.slaves[0]
	set, err := sl.Srv.Session("app").Query("SELECT id, v FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 {
		t.Fatalf("slave rows: %v (rolled-back txn replicated?)", set.Rows)
	}
	if set.Rows[0][1].Str() != "ab" {
		t.Fatalf("slave value %q, want committed txn in order", set.Rows[0][1].Str())
	}
	r.env.Stop()
	r.env.Shutdown()
}

// TestCascadingReplication: because applied statements land in the slave's
// own binlog (log-slave-updates semantics), a slave can serve as a relay
// master for downstream replicas — offloading dump work from the primary.
func TestCascadingReplication(t *testing.T) {
	r := newRig(t, 14, 1, Async, sameZone())
	relay := r.slaves[0]

	// Hang a second tier off the relay slave's server.
	leafInst := r.cloud.Launch("leaf", cloud.Small, sameZone())
	leafSrv := server.New(r.env, "leaf", leafInst, server.DefaultCostModel())
	sess := leafSrv.Session("")
	for _, sql := range []string{
		"CREATE DATABASE app",
		"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(40))",
	} {
		if _, err := leafSrv.ExecFree(sess, sql); err != nil {
			t.Fatal(err)
		}
	}
	relayMaster := NewMaster(r.env, relay.Srv, r.cloud.Network(), Async)
	leaf := NewSlave(r.env, leafSrv)
	relayMaster.Attach(leaf, relay.Srv.Log.LastSeq())

	for i := 0; i < 8; i++ {
		r.write(t, i, "cascade")
	}
	r.env.RunUntil(time.Minute)

	set, err := leafSrv.Session("app").Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 8 {
		t.Fatalf("leaf has %v rows, want 8 relayed through the mid-tier", set.Rows[0][0])
	}
	if leaf.ApplyErrors() != 0 {
		t.Fatalf("leaf apply errors: %d", leaf.ApplyErrors())
	}
	r.env.Stop()
	r.env.Shutdown()
}

// TestRowFormatBreaksHeartbeatMethodology is the negative control for the
// paper's measurement design: with row-based logging the heartbeat INSERT
// replicates with the master's literal timestamp, so the slave commits the
// master's clock reading instead of its own — the per-id timestamp
// difference collapses to zero and can no longer measure replication
// delay. The paper's methodology requires statement-based replication.
func TestRowFormatBreaksHeartbeatMethodology(t *testing.T) {
	measure := func(rowFormat bool) int64 {
		r := newRig(t, 15, 1, Async, sameZone())
		if rowFormat {
			r.master.Srv.SetRowFormat()
		}
		// Heartbeat-style insert: id + local microsecond timestamp.
		sess := r.master.Srv.Session("app")
		prep := r.master.Srv.Session("app")
		if _, err := prep.Exec("CREATE TABLE hb (id BIGINT PRIMARY KEY, ts TIMESTAMP(6))"); err != nil {
			t.Fatal(err)
		}
		r.env.Go("beat", func(p *sim.Proc) {
			p.Sleep(time.Second)
			r.master.Srv.Exec(p, sess, "INSERT INTO hb (id, ts) VALUES (1, UTC_MICROS())")
		})
		r.env.RunUntil(30 * time.Second)
		m, err := r.master.Srv.Session("app").Query("SELECT ts FROM hb WHERE id = 1")
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.slaves[0].Srv.Session("app").Query("SELECT ts FROM hb WHERE id = 1")
		if err != nil || len(s.Rows) != 1 {
			t.Fatalf("slave heartbeat missing: %v %v", s, err)
		}
		diff := s.Rows[0][0].Micros() - m.Rows[0][0].Micros()
		r.env.Stop()
		r.env.Shutdown()
		return diff
	}

	sbr := measure(false)
	rbr := measure(true)
	// Statement-based: the slave's re-execution commits its own later
	// clock — a real, positive delay (≥ network + apply ≈ 36ms here).
	if sbr < (30 * time.Millisecond).Microseconds() {
		t.Fatalf("SBR heartbeat delay %d µs; expected a measurable delay", sbr)
	}
	// Row-based: identical literal timestamps — measured "delay" is zero.
	if rbr != 0 {
		t.Fatalf("RBR heartbeat delta %d µs; row images must carry the master timestamp", rbr)
	}
}
