// Package proxy implements a read/write-splitting database proxy in the
// style of MySQL Connector/J's load-balancing driver, the routing component
// of the paper's customized Cloudstone stack: every write statement goes to
// the master, every read is distributed over the slave replicas by a
// pluggable balancer. A staleness-bounded balancer (the paper's suggested
// "smart load balancer" future work) is included.
package proxy

import (
	"errors"
	"math/rand"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// ErrNoBackend is returned when no live server can serve the statement.
var ErrNoBackend = errors.New("proxy: no live backend available")

// PickContext is what a Balancer sees when routing one read.
type PickContext struct {
	Master   *repl.Master
	Slaves   []*repl.Slave // live, attached slaves
	Inflight func(*repl.Slave) int
	Rng      *rand.Rand
}

// Balancer chooses a slave for a read statement. Returning nil routes the
// read to the master (the fallback when no slave qualifies).
type Balancer interface {
	Pick(ctx *PickContext) *repl.Slave
	Name() string
}

// RoundRobin cycles through slaves — the Connector/J default.
type RoundRobin struct{ next int }

// Pick implements Balancer.
func (b *RoundRobin) Pick(ctx *PickContext) *repl.Slave {
	if len(ctx.Slaves) == 0 {
		return nil
	}
	sl := ctx.Slaves[b.next%len(ctx.Slaves)]
	b.next++
	return sl
}

// Name implements Balancer.
func (b *RoundRobin) Name() string { return "round-robin" }

// Random picks a slave uniformly at random.
type Random struct{}

// Pick implements Balancer.
func (Random) Pick(ctx *PickContext) *repl.Slave {
	if len(ctx.Slaves) == 0 {
		return nil
	}
	return ctx.Slaves[ctx.Rng.Intn(len(ctx.Slaves))]
}

// Name implements Balancer.
func (Random) Name() string { return "random" }

// LeastConn picks the slave with the fewest in-flight statements from this
// proxy.
type LeastConn struct{}

// Pick implements Balancer.
func (LeastConn) Pick(ctx *PickContext) *repl.Slave {
	var best *repl.Slave
	bestN := int(^uint(0) >> 1)
	for _, sl := range ctx.Slaves {
		if n := ctx.Inflight(sl); n < bestN {
			best, bestN = sl, n
		}
	}
	return best
}

// Name implements Balancer.
func (LeastConn) Name() string { return "least-conn" }

// LeastLag picks the slave fewest binlog events behind the master.
type LeastLag struct{}

// Pick implements Balancer.
func (LeastLag) Pick(ctx *PickContext) *repl.Slave {
	var best *repl.Slave
	bestLag := uint64(1<<63 - 1)
	for _, sl := range ctx.Slaves {
		if lag := sl.EventsBehindMaster(); lag < bestLag {
			best, bestLag = sl, lag
		}
	}
	return best
}

// Name implements Balancer.
func (LeastLag) Name() string { return "least-lag" }

// StalenessBounded serves reads only from slaves within MaxEventsBehind of
// the master, round-robin among them; when none qualify the read falls back
// to the master — bounding the client-visible staleness window at the cost
// of master load. This is the "smart load balancer" the paper's §IV-B
// suggests for geo-replication.
type StalenessBounded struct {
	MaxEventsBehind uint64
	next            int
}

// Pick implements Balancer.
func (b *StalenessBounded) Pick(ctx *PickContext) *repl.Slave {
	var fresh []*repl.Slave
	for _, sl := range ctx.Slaves {
		if sl.EventsBehindMaster() <= b.MaxEventsBehind {
			fresh = append(fresh, sl)
		}
	}
	if len(fresh) == 0 {
		return nil // master fallback
	}
	sl := fresh[b.next%len(fresh)]
	b.next++
	return sl
}

// Name implements Balancer.
func (b *StalenessBounded) Name() string { return "staleness-bounded" }

// Stats counts proxy routing decisions.
type Stats struct {
	Reads           uint64
	Writes          uint64
	MasterFallbacks uint64 // reads served by the master
	Errors          uint64
}

// Proxy routes statements from a client placement to a replicated cluster.
type Proxy struct {
	env      *sim.Env
	net      *cloud.Network
	master   *repl.Master
	balancer Balancer
	client   cloud.Placement

	// ReadYourWrites enables session consistency: after a connection
	// writes, its reads are only served by slaves that have applied that
	// write (falling back to the master when none has) — so a user always
	// sees their own updates without bounding global staleness.
	ReadYourWrites bool

	inflight map[*repl.Slave]int
	stats    Stats
}

// New creates a proxy for clients at clientPlace.
func New(env *sim.Env, net *cloud.Network, master *repl.Master, clientPlace cloud.Placement, balancer Balancer) *Proxy {
	if balancer == nil {
		balancer = &RoundRobin{}
	}
	return &Proxy{
		env: env, net: net, master: master, balancer: balancer,
		client: clientPlace, inflight: make(map[*repl.Slave]int),
	}
}

// Stats returns a snapshot of the routing counters.
func (px *Proxy) Stats() Stats { return px.stats }

// Balancer returns the active balancer.
func (px *Proxy) Balancer() Balancer { return px.balancer }

// Master returns the routed master.
func (px *Proxy) Master() *repl.Master { return px.master }

// SetMaster re-points the proxy after a failover.
func (px *Proxy) SetMaster(m *repl.Master) { px.master = m }

// IsRead classifies a statement the way Connector/J does: by its verb.
func IsRead(sql string) bool {
	s := strings.TrimSpace(sql)
	if len(s) < 6 {
		return false
	}
	return strings.EqualFold(s[:6], "SELECT")
}

// Conn is one pooled client connection: lazily-opened sessions against each
// backend server it has touched. Sessions are keyed by server identity so a
// failover (the proxy re-pointing to a promoted master) never reuses a
// session bound to the dead server's engine.
type Conn struct {
	px   *Proxy
	db   string
	sess map[*server.DBServer]*sqlengine.Session

	// lastWriteSeq is the master binlog position after this connection's
	// most recent write; the read-your-writes watermark.
	lastWriteSeq uint64
}

// Connect opens a connection with the given default database.
func (px *Proxy) Connect(db string) *Conn {
	return &Conn{px: px, db: db, sess: make(map[*server.DBServer]*sqlengine.Session)}
}

// ExecResult is a routed statement's outcome.
type ExecResult struct {
	Result *sqlengine.Result
	// OnMaster reports where the statement ran.
	OnMaster bool
	// Degraded reports a semi-sync commit that timed out to async.
	Degraded bool
	// Latency is the client-observed round-trip.
	Latency time.Duration
}

// Exec routes and executes one statement, blocking the calling process for
// the network round trip, queueing and service time. Write statements also
// honor the cluster's synchronization model before returning.
func (c *Conn) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*ExecResult, error) {
	start := p.Now()
	px := c.px
	if IsRead(sql) {
		px.stats.Reads++
		candidates := liveSlaves(px.master)
		if px.ReadYourWrites && c.lastWriteSeq > 0 {
			fresh := candidates[:0:0]
			for _, sl := range candidates {
				if sl.AppliedSeq() >= c.lastWriteSeq {
					fresh = append(fresh, sl)
				}
			}
			candidates = fresh // empty → master fallback below
		}
		sl := px.balancer.Pick(&PickContext{
			Master:   px.master,
			Slaves:   candidates,
			Inflight: func(s *repl.Slave) int { return px.inflight[s] },
			Rng:      p.Rand(),
		})
		if sl == nil {
			// Master fallback (no slaves, or none fresh enough).
			if !px.master.Srv.Up() {
				px.stats.Errors++
				return nil, ErrNoBackend
			}
			px.stats.MasterFallbacks++
			res, err := c.execOn(p, nil, sql, args)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Result: res, OnMaster: true, Latency: p.Now() - start}, nil
		}
		px.inflight[sl]++
		res, err := c.execOn(p, sl, sql, args)
		px.inflight[sl]--
		if err != nil {
			px.stats.Errors++
			return nil, err
		}
		return &ExecResult{Result: res, Latency: p.Now() - start}, nil
	}

	px.stats.Writes++
	if !px.master.Srv.Up() {
		px.stats.Errors++
		return nil, ErrNoBackend
	}
	res, err := c.execOn(p, nil, sql, args)
	if err != nil {
		px.stats.Errors++
		return nil, err
	}
	degraded := false
	if res.Stats.Class == sqlengine.ClassWrite {
		c.lastWriteSeq = px.master.Srv.Log.LastSeq()
		degraded = !px.master.WaitCommitted(p, c.lastWriteSeq)
	}
	return &ExecResult{Result: res, OnMaster: true, Degraded: degraded, Latency: p.Now() - start}, nil
}

// Query is Exec returning the result set.
func (c *Conn) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := c.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	if res.Result.Set == nil {
		return nil, errors.New("proxy: statement returned no result set")
	}
	return res.Result.Set, nil
}

// execOn runs sql on the chosen backend (nil = master) with network legs.
func (c *Conn) execOn(p *sim.Proc, sl *repl.Slave, sql string, args []sqlengine.Value) (*sqlengine.Result, error) {
	px := c.px
	srv := px.master.Srv
	if sl != nil {
		srv = sl.Srv
	}
	sess := c.sess[srv]
	if sess == nil {
		sess = srv.Session(c.db)
		c.sess[srv] = sess
	}
	px.net.Transit(p, px.client, srv.Inst.Place)
	// The backend can die while the request is on the wire.
	if !srv.Up() {
		return nil, ErrNoBackend
	}
	res, err := srv.Exec(p, sess, sql, args...)
	if err != nil {
		return nil, err
	}
	px.net.Transit(p, srv.Inst.Place, px.client)
	return res, nil
}

// liveSlaves filters the master's attached slaves to running instances.
func liveSlaves(m *repl.Master) []*repl.Slave {
	slaves := m.Slaves()
	out := slaves[:0:0]
	for _, sl := range slaves {
		if sl.Srv.Up() {
			out = append(out, sl)
		}
	}
	return out
}
