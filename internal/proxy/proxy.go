// Package proxy implements a read/write-splitting database proxy in the
// style of MySQL Connector/J's load-balancing driver, the routing component
// of the paper's customized Cloudstone stack: every write statement goes to
// the master, every read is distributed over the slave replicas by a
// pluggable balancer. A staleness-bounded balancer (the paper's suggested
// "smart load balancer" future work) is included.
package proxy

import (
	"errors"
	"math/rand"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// ErrNoBackend is returned when no live server can serve the statement.
var ErrNoBackend = errors.New("proxy: no live backend available")

// ErrStatementTimeout is returned when a statement's network leg exceeds
// the per-statement timeout (a partitioned or unresponsive backend).
var ErrStatementTimeout = errors.New("proxy: statement timed out")

// ErrWrongShard is returned when a statement reaches a proxy whose backend
// cell does not own the statement's shard key — the client routed on a
// stale shard map (or hit the brief cutover barrier of an online split).
// It is deliberately NOT retryable at this proxy: retrying against the
// same cell can never succeed. The shard router handles it by refreshing
// its map snapshot and re-routing to the current owner.
var ErrWrongShard = errors.New("proxy: statement not owned by this shard cell")

// ErrNotOwner is the ownership-check failure, under the name the shard
// router's retry-after-refresh path matches on. It is the same sentinel as
// ErrWrongShard, so errors.Is works with either.
var ErrNotOwner = ErrWrongShard

// PickContext is what a Balancer sees when routing one read.
type PickContext struct {
	Master   *repl.Master
	Slaves   []*repl.Slave // live, attached slaves
	Inflight func(*repl.Slave) int
	Rng      *rand.Rand
}

// Balancer chooses a slave for a read statement. Returning nil routes the
// read to the master (the fallback when no slave qualifies).
type Balancer interface {
	Pick(ctx *PickContext) *repl.Slave
	Name() string
}

// RoundRobin cycles through slaves — the Connector/J default.
type RoundRobin struct{ next int }

// Pick implements Balancer.
func (b *RoundRobin) Pick(ctx *PickContext) *repl.Slave {
	if len(ctx.Slaves) == 0 {
		return nil
	}
	sl := ctx.Slaves[b.next%len(ctx.Slaves)]
	b.next++
	return sl
}

// Name implements Balancer.
func (b *RoundRobin) Name() string { return "round-robin" }

// Random picks a slave uniformly at random.
type Random struct{}

// Pick implements Balancer.
func (Random) Pick(ctx *PickContext) *repl.Slave {
	if len(ctx.Slaves) == 0 {
		return nil
	}
	return ctx.Slaves[ctx.Rng.Intn(len(ctx.Slaves))]
}

// Name implements Balancer.
func (Random) Name() string { return "random" }

// LeastConn picks the slave with the fewest in-flight statements from this
// proxy.
type LeastConn struct{}

// Pick implements Balancer. Ties are broken uniformly at random so that an
// idle cluster (every count equal) spreads reads instead of hot-spotting
// the first slave.
func (LeastConn) Pick(ctx *PickContext) *repl.Slave {
	var ties []*repl.Slave
	bestN := int(^uint(0) >> 1)
	for _, sl := range ctx.Slaves {
		switch n := ctx.Inflight(sl); {
		case n < bestN:
			bestN = n
			ties = append(ties[:0], sl)
		case n == bestN:
			ties = append(ties, sl)
		}
	}
	return pickTie(ctx, ties)
}

// Name implements Balancer.
func (LeastConn) Name() string { return "least-conn" }

// LeastLag picks the slave fewest binlog events behind the master.
type LeastLag struct{}

// Pick implements Balancer. Ties (e.g. every slave fully caught up under
// light load) are broken uniformly at random instead of always returning
// the first slave.
func (LeastLag) Pick(ctx *PickContext) *repl.Slave {
	var ties []*repl.Slave
	bestLag := uint64(1<<63 - 1)
	for _, sl := range ctx.Slaves {
		switch lag := sl.EventsBehindMaster(); {
		case lag < bestLag:
			bestLag = lag
			ties = append(ties[:0], sl)
		case lag == bestLag:
			ties = append(ties, sl)
		}
	}
	return pickTie(ctx, ties)
}

// pickTie resolves a best-score tie via the routing RNG.
func pickTie(ctx *PickContext, ties []*repl.Slave) *repl.Slave {
	switch len(ties) {
	case 0:
		return nil
	case 1:
		return ties[0]
	default:
		return ties[ctx.Rng.Intn(len(ties))]
	}
}

// Name implements Balancer.
func (LeastLag) Name() string { return "least-lag" }

// DefaultMaxEventsBehind is the staleness bound applied when a
// StalenessBounded balancer (or a Bounded-tier proxy) leaves its bound
// unset: roughly the backlog a healthy zone-local slave clears within a
// heartbeat interval, loose enough to keep reads off the master.
const DefaultMaxEventsBehind = 64

// StalenessBounded serves reads only from slaves within MaxEventsBehind of
// the master, round-robin among them; when none qualify the read falls back
// to the master — bounding the client-visible staleness window at the cost
// of master load. This is the "smart load balancer" the paper's §IV-B
// suggests for geo-replication.
type StalenessBounded struct {
	// MaxEventsBehind is the staleness bound in binlog events. Zero means
	// "unset" and applies DefaultMaxEventsBehind: the zero value used to
	// mean literally zero events behind, which under write load silently
	// disqualified every slave and degenerated to master-only reads. Set
	// Strict to get the literal-zero behaviour.
	MaxEventsBehind uint64
	// Strict makes a zero MaxEventsBehind mean exactly that — only fully
	// caught-up slaves qualify — instead of the default bound.
	Strict bool
	next   int
}

// bound resolves the effective staleness bound.
func (b *StalenessBounded) bound() uint64 {
	if b.MaxEventsBehind == 0 && !b.Strict {
		return DefaultMaxEventsBehind
	}
	return b.MaxEventsBehind
}

// Pick implements Balancer.
func (b *StalenessBounded) Pick(ctx *PickContext) *repl.Slave {
	max := b.bound()
	var fresh []*repl.Slave
	for _, sl := range ctx.Slaves {
		if sl.EventsBehindMaster() <= max {
			fresh = append(fresh, sl)
		}
	}
	if len(fresh) == 0 {
		return nil // master fallback
	}
	sl := fresh[b.next%len(fresh)]
	b.next++
	return sl
}

// Name implements Balancer.
func (b *StalenessBounded) Name() string { return "staleness-bounded" }

// Stats counts proxy routing decisions and robustness outcomes.
type Stats struct {
	Reads           uint64
	Writes          uint64
	MasterFallbacks uint64 // reads served by the master
	Errors          uint64 // statements that failed after all retries

	// Robustness outcome counters.
	Retries           uint64 // statement re-attempts after a retryable error
	Timeouts          uint64 // attempts abandoned at the statement timeout
	SlaveEvictions    uint64 // slaves benched after repeated errors
	SlaveReadmissions uint64 // benched slaves returned to rotation
	Failovers         uint64 // master promotions triggered by this proxy
	DegradedCommits   uint64 // semi-sync commits that timed out to async
	WrongShard        uint64 // statements rejected by the ownership check

	// Consistency-tier counters: reads served under each tier, epoch
	// fallbacks (session reads forced to the master because their token
	// predates the current master's reign), total binlog events the serving
	// backends were observed behind, and read-your-writes compliance
	// (checked = reads with a comparable token, compliant = the backend had
	// applied the connection's newest write).
	EventualReads       uint64
	BoundedReads        uint64
	SessionReads        uint64
	StrongReads         uint64
	EpochFallbacks      uint64
	StaleEventsObserved uint64
	RYWChecked          uint64
	RYWCompliant        uint64
}

// RetryPolicy configures client-side robustness: bounded retries with
// exponential backoff + jitter, a per-statement timeout, automatic slave
// eviction/readmission on repeated errors, and master-failure detection.
// The zero value disables everything (single attempt, legacy behaviour).
type RetryPolicy struct {
	// MaxAttempts caps total attempts per statement (≤1 = no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = no cap).
	MaxBackoff time.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of
	// itself, decorrelating retry storms.
	JitterFrac float64
	// StatementTimeout bounds each attempt's network legs; an attempt
	// against an unreachable backend fails with ErrStatementTimeout after
	// this long (0 = cloud.DefaultTransitTimeout when partitioned).
	StatementTimeout time.Duration
	// EvictAfter benches a slave after this many consecutive errors
	// (0 = never evict).
	EvictAfter int
	// ReadmitAfter is how long an evicted slave sits out before it is
	// probed again (0 = 30 s when EvictAfter is set).
	ReadmitAfter time.Duration
	// FailoverOnMasterDown lets the proxy invoke its OnMasterFailure hook
	// when a statement finds the master dead, promoting a slave instead of
	// returning ErrNoBackend forever.
	FailoverOnMasterDown bool
}

// DefaultRetryPolicy returns the robustness defaults used by the chaos
// experiments: 4 attempts, 100 ms→2 s backoff with 20% jitter, 5 s
// statement timeout, eviction after 3 consecutive errors with 30 s
// readmission, and automatic failover.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:          4,
		BaseBackoff:          100 * time.Millisecond,
		MaxBackoff:           2 * time.Second,
		JitterFrac:           0.2,
		StatementTimeout:     5 * time.Second,
		EvictAfter:           3,
		ReadmitAfter:         30 * time.Second,
		FailoverOnMasterDown: true,
	}
}

func (rp RetryPolicy) attempts() int {
	if rp.MaxAttempts < 1 {
		return 1
	}
	return rp.MaxAttempts
}

func (rp RetryPolicy) readmitAfter() time.Duration {
	if rp.ReadmitAfter <= 0 {
		return 30 * time.Second
	}
	return rp.ReadmitAfter
}

// backoff returns the sleep before retry attempt n (n ≥ 1), with
// exponential growth and jitter.
func (rp RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	base := rp.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(n-1)
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	if rp.JitterFrac > 0 {
		f := 1 + rp.JitterFrac*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// slaveHealth is the proxy's per-slave error bookkeeping.
type slaveHealth struct {
	consecErrs   int
	evicted      bool
	evictedUntil sim.Time
}

// Proxy routes statements from a client placement to a replicated cluster.
type Proxy struct {
	env      *sim.Env
	net      *cloud.Network
	master   *repl.Master
	balancer Balancer
	client   cloud.Placement

	// Consistency selects the read tier (see the Consistency type); the
	// zero value is Eventual. Set via core.WithConsistency.
	Consistency Consistency

	// MaxStaleEvents is the Bounded tier's staleness bound in binlog
	// events; zero applies DefaultMaxEventsBehind.
	MaxStaleEvents uint64

	// ReadYourWrites enables session consistency: after a connection
	// writes, its reads are only served by slaves that have applied that
	// write (falling back to the master when none has) — so a user always
	// sees their own updates without bounding global staleness. Equivalent
	// to Consistency = Session; kept for compatibility.
	ReadYourWrites bool

	// Retry configures client-side robustness; the zero value preserves
	// the legacy single-attempt behaviour.
	Retry RetryPolicy

	// OnMasterFailure, when set together with Retry.FailoverOnMasterDown,
	// is invoked (at most once per dead master) when a statement finds the
	// master down; it should promote a replica and return the new master.
	// core.Open wires it to cluster.Failover.
	OnMasterFailure func(p *sim.Proc) (*repl.Master, error)

	// Tracer, when set, records a "proxy" route span per statement and one
	// attempt span per routed backend try. Nil disables tracing.
	Tracer *obs.Tracer

	// CheckOwner, when set, validates a statement against this proxy's
	// backend cell before any routing happens: a sharded deployment installs
	// a hook that extracts the statement's shard key and returns
	// ErrWrongShard when another cell owns it. The check runs once per
	// statement (not per retry attempt) because its verdict cannot change by
	// retrying here.
	CheckOwner func(sql string, args []sqlengine.Value) error

	inflight    map[*repl.Slave]int
	health      map[*repl.Slave]*slaveHealth
	quarantined map[*repl.Slave]bool
	readsServed map[*repl.Slave]uint64
	stats       Stats
}

// New creates a proxy for clients at clientPlace.
func New(env *sim.Env, net *cloud.Network, master *repl.Master, clientPlace cloud.Placement, balancer Balancer) *Proxy {
	if balancer == nil {
		balancer = &RoundRobin{}
	}
	return &Proxy{
		env: env, net: net, master: master, balancer: balancer,
		client:      clientPlace,
		inflight:    make(map[*repl.Slave]int),
		health:      make(map[*repl.Slave]*slaveHealth),
		quarantined: make(map[*repl.Slave]bool),
		readsServed: make(map[*repl.Slave]uint64),
	}
}

// Quarantine removes sl from the read rotation without detaching it from
// replication: a warming-up replica keeps catching up on its backlog but
// serves no client reads until Admit. Scale-in uses the same gate to stop
// new reads before draining and terminating a node.
func (px *Proxy) Quarantine(sl *repl.Slave) { px.quarantined[sl] = true }

// Admit returns a quarantined slave to the read rotation.
func (px *Proxy) Admit(sl *repl.Slave) { delete(px.quarantined, sl) }

// Quarantined reports whether sl is currently gated out of the rotation.
func (px *Proxy) Quarantined(sl *repl.Slave) bool { return px.quarantined[sl] }

// AdmittedSlaves returns the live, attached, non-quarantined slaves — the
// set reads are actually balanced over right now.
func (px *Proxy) AdmittedSlaves() []*repl.Slave {
	live := liveSlaves(px.master)
	out := live[:0:0]
	for _, sl := range live {
		if !px.quarantined[sl] {
			out = append(out, sl)
		}
	}
	return out
}

// InflightReads returns the number of reads this proxy currently has
// outstanding against sl — the drain condition for graceful scale-in.
func (px *Proxy) InflightReads(sl *repl.Slave) int { return px.inflight[sl] }

// ReadsServed returns the number of reads sl has completed for this proxy.
func (px *Proxy) ReadsServed(sl *repl.Slave) uint64 { return px.readsServed[sl] }

// Drain quarantines sl and blocks the calling process until no read is in
// flight against it or timeout elapses (≤0 = 30 s). It returns the number
// of reads still outstanding — zero means the node can be terminated
// without any client observing a dying backend.
func (px *Proxy) Drain(p *sim.Proc, sl *repl.Slave, timeout time.Duration) int {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	px.Quarantine(sl)
	deadline := p.Now() + timeout
	for px.inflight[sl] > 0 && p.Now() < deadline {
		p.Sleep(10 * time.Millisecond)
	}
	return px.inflight[sl]
}

// Forget drops all per-slave bookkeeping for a removed replica so the maps
// do not grow without bound across scale-out/scale-in cycles.
func (px *Proxy) Forget(sl *repl.Slave) {
	delete(px.inflight, sl)
	delete(px.health, sl)
	delete(px.quarantined, sl)
	delete(px.readsServed, sl)
}

// Stats returns a snapshot of the routing counters.
func (px *Proxy) Stats() Stats { return px.stats }

// Balancer returns the active balancer.
func (px *Proxy) Balancer() Balancer { return px.balancer }

// Master returns the routed master.
func (px *Proxy) Master() *repl.Master { return px.master }

// SetMaster re-points the proxy after a failover.
func (px *Proxy) SetMaster(m *repl.Master) { px.master = m }

// IsRead classifies a statement the way Connector/J does: by its leading
// verb, after stripping comments. SELECT, SHOW, DESCRIBE/DESC and EXPLAIN
// are read-only and safe to route to a replica; everything else takes the
// write path to the master.
func IsRead(sql string) bool {
	verb := leadingVerb(sql)
	switch verb {
	case "SELECT", "SHOW", "DESCRIBE", "DESC", "EXPLAIN":
		return true
	}
	return false
}

// leadingVerb returns the first keyword of sql, upper-cased, after
// skipping leading whitespace and SQL comments (/* ... */, -- line, # line).
func leadingVerb(sql string) string {
	s := sql
	for {
		s = strings.TrimLeft(s, " \t\r\n")
		switch {
		case strings.HasPrefix(s, "/*"):
			end := strings.Index(s[2:], "*/")
			if end < 0 {
				return "" // unterminated comment: not classifiable as a read
			}
			s = s[2+end+2:]
		case strings.HasPrefix(s, "--"), strings.HasPrefix(s, "#"):
			nl := strings.IndexByte(s, '\n')
			if nl < 0 {
				return ""
			}
			s = s[nl+1:]
		default:
			end := 0
			for end < len(s) {
				c := s[end]
				if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
					end++
					continue
				}
				break
			}
			return strings.ToUpper(s[:end])
		}
	}
}

// Conn is one pooled client connection: lazily-opened sessions against each
// backend server it has touched. Sessions are keyed by server identity so a
// failover (the proxy re-pointing to a promoted master) never reuses a
// session bound to the dead server's engine.
type Conn struct {
	px   *Proxy
	db   string
	sess map[*server.DBServer]*sqlengine.Session

	// token is the read-your-writes watermark after this connection's most
	// recent write: (master epoch, binlog seq). The epoch makes the
	// watermark failover-safe — sequences from a previous master are never
	// compared against the promoted master's numbering.
	token Token
}

// Token returns the connection's session-consistency watermark. The shard
// router reads it to thread tokens across cell boundaries.
func (c *Conn) Token() Token { return c.token }

// SetToken overrides the watermark; it is merged via Token.Max so a
// restored token can only tighten, never relax, the session guarantee.
func (c *Conn) SetToken(t Token) { c.token = c.token.Max(t) }

// Connect opens a connection with the given default database.
func (px *Proxy) Connect(db string) *Conn {
	return &Conn{px: px, db: db, sess: make(map[*server.DBServer]*sqlengine.Session)}
}

// ExecResult is a routed statement's outcome.
type ExecResult struct {
	Result *sqlengine.Result
	// OnMaster reports where the statement ran.
	OnMaster bool
	// Degraded reports a semi-sync commit that timed out to async.
	Degraded bool
	// Latency is the client-observed round-trip.
	Latency time.Duration
}

// Exec routes and executes one statement, blocking the calling process for
// the network round trip, queueing and service time. Write statements also
// honor the cluster's synchronization model before returning. Retryable
// failures (dead or unreachable backends) are retried with exponential
// backoff per the proxy's RetryPolicy; a dead master triggers the
// OnMasterFailure hook (slave promotion) when the policy allows it.
func (c *Conn) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*ExecResult, error) {
	start := p.Now()
	px := c.px
	isRead := IsRead(sql)
	if isRead {
		px.stats.Reads++
	} else {
		px.stats.Writes++
	}
	sp := px.Tracer.StartSpan(p, "proxy", "route")
	if isRead {
		sp.SetAttr("kind", "read")
	} else {
		sp.SetAttr("kind", "write")
	}
	if px.CheckOwner != nil {
		if err := px.CheckOwner(sql, args); err != nil {
			px.stats.WrongShard++
			sp.SetAttr("error", "wrong-shard")
			sp.End(p)
			return nil, err
		}
	}
	attempts := px.Retry.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			px.stats.Retries++
			p.Sleep(px.Retry.backoff(attempt-1, p.Rand()))
		}
		res, err := c.execOnce(p, isRead, sql, args, start)
		if err == nil {
			sp.SetAttrInt("attempts", int64(attempt))
			sp.End(p)
			return res, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	px.stats.Errors++
	sp.SetAttr("error", "all-attempts-failed")
	sp.End(p)
	return nil, lastErr
}

// PublishMetrics snapshots the proxy's routing and robustness counters into
// reg under the "proxy." prefix.
func (px *Proxy) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := px.stats
	reg.Counter("proxy.reads").Set(float64(s.Reads))
	reg.Counter("proxy.writes").Set(float64(s.Writes))
	reg.Counter("proxy.master_fallbacks").Set(float64(s.MasterFallbacks))
	reg.Counter("proxy.errors").Set(float64(s.Errors))
	reg.Counter("proxy.retries").Set(float64(s.Retries))
	reg.Counter("proxy.timeouts").Set(float64(s.Timeouts))
	reg.Counter("proxy.slave_evictions").Set(float64(s.SlaveEvictions))
	reg.Counter("proxy.slave_readmissions").Set(float64(s.SlaveReadmissions))
	reg.Counter("proxy.failovers").Set(float64(s.Failovers))
	reg.Counter("proxy.degraded_commits").Set(float64(s.DegradedCommits))
	reg.Counter("proxy.wrong_shard").Set(float64(s.WrongShard))
	reg.Counter("proxy.consistency.eventual.reads").Set(float64(s.EventualReads))
	reg.Counter("proxy.consistency.bounded.reads").Set(float64(s.BoundedReads))
	reg.Counter("proxy.consistency.session.reads").Set(float64(s.SessionReads))
	reg.Counter("proxy.consistency.strong.reads").Set(float64(s.StrongReads))
	reg.Counter("proxy.consistency.epoch_fallbacks").Set(float64(s.EpochFallbacks))
	reg.Counter("proxy.consistency.stale_events_observed").Set(float64(s.StaleEventsObserved))
	reg.Counter("proxy.consistency.ryw_checked").Set(float64(s.RYWChecked))
	reg.Counter("proxy.consistency.ryw_compliant").Set(float64(s.RYWCompliant))
}

// retryable reports whether an error may clear on a different backend or a
// later attempt (infrastructure faults, not SQL errors). ErrWrongShard is
// deliberately excluded: a misrouted statement fails identically on every
// attempt against this cell, so blind retries would only add latency — the
// shard router must refresh its map and re-route instead.
func retryable(err error) bool {
	return errors.Is(err, ErrNoBackend) ||
		errors.Is(err, ErrStatementTimeout) ||
		errors.Is(err, server.ErrServerDown)
}

// execOnce is a single routed attempt.
func (c *Conn) execOnce(p *sim.Proc, isRead bool, sql string, args []sqlengine.Value, start sim.Time) (*ExecResult, error) {
	px := c.px
	if isRead {
		// The consistency tier filters which backends qualify; the balancer
		// then picks among the qualifiers. An empty candidate set falls back
		// to the master below.
		tier := px.tier()
		var candidates []*repl.Slave
		switch tier {
		case Strong:
			// Master only; never consult the slave set.
		case Session:
			candidates = px.eligibleSlaves(p)
			if !c.token.IsZero() {
				if c.token.Epoch != px.master.Epoch {
					// Token minted under a previous master: its sequence is
					// not comparable here. Serve from the master and re-mint
					// the token on the new timeline (below).
					candidates = nil
				} else {
					fresh := candidates[:0:0]
					for _, sl := range candidates {
						if sl.AppliedSeq() >= c.token.Seq {
							fresh = append(fresh, sl)
						}
					}
					candidates = fresh
				}
			}
		case Bounded:
			bound := px.staleBound()
			candidates = px.eligibleSlaves(p)
			fresh := candidates[:0:0]
			for _, sl := range candidates {
				if sl.EventsBehindMaster() <= bound {
					fresh = append(fresh, sl)
				}
			}
			candidates = fresh
		default: // Eventual
			candidates = px.eligibleSlaves(p)
		}
		var sl *repl.Slave
		if tier != Strong {
			sl = px.balancer.Pick(&PickContext{
				Master:   px.master,
				Slaves:   candidates,
				Inflight: func(s *repl.Slave) int { return px.inflight[s] },
				Rng:      p.Rand(),
			})
		}
		if sl == nil {
			// Master fallback (strong tier, no slaves, or none fresh enough).
			if !px.masterUsable(p) {
				return nil, ErrNoBackend
			}
			px.stats.MasterFallbacks++
			res, err := c.execOn(p, nil, sql, args)
			if err != nil {
				return nil, err
			}
			px.noteRead(tier, c, nil)
			if !c.token.IsZero() && c.token.Epoch != px.master.Epoch {
				// The read crossed a master epoch boundary — whether the
				// stale token emptied the candidate set up front or the
				// fallback itself triggered the failover. The master has
				// now shown this session the new timeline's state; adopt it
				// so later reads stay monotonic without pinning the session
				// to the master forever.
				px.stats.EpochFallbacks++
				c.token = Token{Epoch: px.master.Epoch, Seq: px.master.Srv.Log.LastSeq()}
			}
			return &ExecResult{Result: res, OnMaster: true, Latency: p.Now() - start}, nil
		}
		px.inflight[sl]++
		res, err := c.execOn(p, sl, sql, args)
		px.inflight[sl]--
		if err != nil {
			px.noteSlaveError(p, sl)
			return nil, err
		}
		px.readsServed[sl]++
		px.noteSlaveOK(sl)
		px.noteRead(tier, c, sl)
		return &ExecResult{Result: res, Latency: p.Now() - start}, nil
	}

	if !px.masterUsable(p) {
		return nil, ErrNoBackend
	}
	res, err := c.execOn(p, nil, sql, args)
	if err != nil {
		return nil, err
	}
	degraded := false
	if res.Stats.Class == sqlengine.ClassWrite {
		c.token = Token{Epoch: px.master.Epoch, Seq: px.master.Srv.Log.LastSeq()}
		degraded = !px.master.WaitCommitted(p, c.token.Seq)
		if degraded {
			px.stats.DegradedCommits++
		}
	}
	return &ExecResult{Result: res, OnMaster: true, Degraded: degraded, Latency: p.Now() - start}, nil
}

// masterUsable reports whether the master can serve a statement, invoking
// the failover hook first when the master is dead and the policy allows
// promotion. The hook runs without yielding to the scheduler, so at most
// one promotion happens per dead master even with many concurrent clients.
func (px *Proxy) masterUsable(p *sim.Proc) bool {
	if px.master.Srv.Up() {
		return true
	}
	if !px.Retry.FailoverOnMasterDown || px.OnMasterFailure == nil {
		return false
	}
	m, err := px.OnMasterFailure(p)
	if err != nil || m == nil {
		return false
	}
	px.master = m
	px.stats.Failovers++
	return m.Srv.Up()
}

// eligibleSlaves filters live slaves through the admission gate (warm-up
// quarantine) and the eviction bench: benched slaves are skipped until
// their ReadmitAfter window passes, then counted as readmitted and probed
// again.
func (px *Proxy) eligibleSlaves(p *sim.Proc) []*repl.Slave {
	slaves := px.AdmittedSlaves()
	if px.Retry.EvictAfter <= 0 {
		return slaves
	}
	out := slaves[:0:0]
	for _, sl := range slaves {
		h := px.health[sl]
		if h != nil && h.evicted {
			if p.Now() < h.evictedUntil {
				continue
			}
			h.evicted = false
			h.consecErrs = 0
			px.stats.SlaveReadmissions++
		}
		out = append(out, sl)
	}
	return out
}

// noteSlaveError records a failed read on sl and benches it after
// EvictAfter consecutive errors.
func (px *Proxy) noteSlaveError(p *sim.Proc, sl *repl.Slave) {
	if px.Retry.EvictAfter <= 0 {
		return
	}
	h := px.health[sl]
	if h == nil {
		h = &slaveHealth{}
		px.health[sl] = h
	}
	h.consecErrs++
	if !h.evicted && h.consecErrs >= px.Retry.EvictAfter {
		h.evicted = true
		h.evictedUntil = p.Now() + px.Retry.readmitAfter()
		px.stats.SlaveEvictions++
	}
}

// noteSlaveOK clears sl's consecutive-error streak.
func (px *Proxy) noteSlaveOK(sl *repl.Slave) {
	if h := px.health[sl]; h != nil {
		h.consecErrs = 0
	}
}

// Query is Exec returning the result set.
func (c *Conn) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := c.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	if res.Result.Set == nil {
		return nil, errors.New("proxy: statement returned no result set")
	}
	return res.Result.Set, nil
}

// execOn runs sql on the chosen backend (nil = master) with network legs.
// Each leg honors the per-statement timeout: a partitioned path fails the
// attempt with ErrStatementTimeout instead of hanging forever.
func (c *Conn) execOn(p *sim.Proc, sl *repl.Slave, sql string, args []sqlengine.Value) (*sqlengine.Result, error) {
	px := c.px
	srv := px.master.Srv
	if sl != nil {
		srv = sl.Srv
	}
	asp := px.Tracer.StartSpan(p, "proxy", "attempt")
	asp.SetAttr("backend", srv.Name)
	sess := c.sess[srv]
	if sess == nil {
		sess = srv.Session(c.db)
		c.sess[srv] = sess
	}
	if !px.net.TransitTimeout(p, px.client, srv.Inst.Place, px.Retry.StatementTimeout) {
		px.stats.Timeouts++
		asp.SetAttr("error", "timeout")
		asp.End(p)
		return nil, ErrStatementTimeout
	}
	// The backend can die while the request is on the wire.
	if !srv.Up() {
		asp.SetAttr("error", "down")
		asp.End(p)
		return nil, ErrNoBackend
	}
	res, err := srv.Exec(p, sess, sql, args...)
	if err != nil {
		asp.SetAttr("error", "exec")
		asp.End(p)
		return nil, err
	}
	if !px.net.TransitTimeout(p, srv.Inst.Place, px.client, px.Retry.StatementTimeout) {
		px.stats.Timeouts++
		asp.SetAttr("error", "timeout")
		asp.End(p)
		return nil, ErrStatementTimeout
	}
	asp.End(p)
	return res, nil
}

// liveSlaves filters the master's attached slaves to running instances.
func liveSlaves(m *repl.Master) []*repl.Slave {
	slaves := m.Slaves()
	out := slaves[:0:0]
	for _, sl := range slaves {
		if sl.Srv.Up() {
			out = append(out, sl)
		}
	}
	return out
}
