package proxy

import "cloudrepl/internal/repl"

// This file defines the proxy's client-selectable consistency tiers. The
// tier is an eligibility filter applied to the live slave set before the
// balancer picks: the balancer still decides *which* qualifying backend
// serves the read, the tier decides which backends qualify at all.
//
//	Eventual — any admitted slave; maximum read scale, unbounded staleness.
//	Bounded  — slaves within a staleness bound (events behind the master).
//	Session  — read-your-writes: only slaves that have applied this
//	           connection's newest write, tracked by an epoch-aware token.
//	Strong   — master only; linearizable reads at master-capacity cost.

// Consistency selects the read-consistency tier a proxy enforces.
type Consistency uint8

// Consistency tiers, weakest to strongest.
const (
	// Eventual routes reads to any admitted slave (the default).
	Eventual Consistency = iota
	// Bounded restricts reads to slaves at most MaxStaleEvents binlog
	// events behind the master, falling back to the master when none
	// qualifies.
	Bounded
	// Session guarantees read-your-writes per connection via Token.
	Session
	// Strong serves every read from the master.
	Strong
)

func (c Consistency) String() string {
	switch c {
	case Bounded:
		return "bounded"
	case Session:
		return "session"
	case Strong:
		return "strong"
	default:
		return "eventual"
	}
}

// Token is a session-consistency watermark in GTID style: the master epoch
// it was minted under and the binlog sequence of the connection's newest
// write. Sequences are only comparable within one epoch — failover promotes
// a slave under a new epoch precisely because the old master's tail may be
// lost, so a token from a previous epoch routes the read to the master and
// is re-minted there instead of being compared against incomparable
// sequence numbers.
type Token struct {
	Epoch uint64
	Seq   uint64
}

// IsZero reports whether the token carries no write to read behind.
func (t Token) IsZero() bool { return t.Epoch == 0 && t.Seq == 0 }

// Max returns the later of two tokens: the higher epoch wins, then the
// higher sequence. Scatter-gather routing merges per-cell tokens with it.
func (t Token) Max(o Token) Token {
	if o.Epoch > t.Epoch || (o.Epoch == t.Epoch && o.Seq > t.Seq) {
		return o
	}
	return t
}

// tier resolves the proxy's effective consistency tier; the legacy
// ReadYourWrites flag maps onto Session when no explicit tier is set.
func (px *Proxy) tier() Consistency {
	if px.Consistency == Eventual && px.ReadYourWrites {
		return Session
	}
	return px.Consistency
}

// staleBound resolves the Bounded tier's event bound, applying the default
// when unset.
func (px *Proxy) staleBound() uint64 {
	if px.MaxStaleEvents == 0 {
		return DefaultMaxEventsBehind
	}
	return px.MaxStaleEvents
}

// noteRead records one served read for the tier's observability counters:
// the per-tier count, the staleness actually observed (binlog events the
// serving backend was behind, 0 on the master), and read-your-writes
// compliance — whether the backend had applied the connection's newest
// write. Compliance is measured in every tier (the token is minted on every
// write), which is what lets an experiment show Session holding 100% where
// Eventual drifts.
func (px *Proxy) noteRead(tier Consistency, c *Conn, sl *repl.Slave) {
	switch tier {
	case Bounded:
		px.stats.BoundedReads++
	case Session:
		px.stats.SessionReads++
	case Strong:
		px.stats.StrongReads++
	default:
		px.stats.EventualReads++
	}
	var behind uint64
	if sl != nil {
		behind = sl.EventsBehindMaster()
	}
	px.stats.StaleEventsObserved += behind
	if !c.token.IsZero() && c.token.Epoch == px.master.Epoch {
		px.stats.RYWChecked++
		applied := px.master.Srv.Log.LastSeq()
		if sl != nil {
			applied = sl.AppliedSeq()
		}
		if applied >= c.token.Seq {
			px.stats.RYWCompliant++
		}
	}
}
