package proxy

import (
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// topo builds master + N same-zone slaves and a proxy colocated with them.
func topo(t *testing.T, seed int64, nSlaves int, balancer Balancer) (*sim.Env, *Proxy) {
	t.Helper()
	env := sim.NewEnv(seed)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	preload := func(srv *server.DBServer) {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}
	mSrv := server.New(env, "master", c.Launch("master", cloud.Small, place), server.DefaultCostModel())
	preload(mSrv)
	m := repl.NewMaster(env, mSrv, c.Network(), repl.Async)
	for i := 0; i < nSlaves; i++ {
		name := fmt.Sprintf("slave%d", i+1)
		sSrv := server.New(env, name, c.Launch(name, cloud.Small, place), server.DefaultCostModel())
		preload(sSrv)
		m.Attach(repl.NewSlave(env, sSrv), mSrv.Log.LastSeq())
	}
	return env, New(env, c.Network(), m, place, balancer)
}

func TestIsRead(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT * FROM t", true},
		{"  select 1", true},
		{"INSERT INTO t VALUES (1)", false},
		{"UPDATE t SET v = 1", false},
		{"DELETE FROM t", false},
		{"BEGIN", false},
		{"", false},
		// Leading comments must not hide the verb (Connector/J strips them).
		{"/* hint */ SELECT 1", true},
		{"/* c1 */ /* c2 */\n SELECT 1", true},
		{"-- comment\nSELECT 1", true},
		{"# comment\nselect 1", true},
		{"/* comment */ INSERT INTO t VALUES (1)", false},
		{"-- only a comment", false},
		{"/* unterminated SELECT", false},
		// Metadata statements are read-only and safe on a replica.
		{"SHOW TABLES", true},
		{"show databases", true},
		{"DESCRIBE t", true},
		{"DESC t", true},
		{"EXPLAIN SELECT * FROM t", true},
		// Prefix matching must stop at the word boundary.
		{"SELECTION IS NOT A VERB", false},
		{"SHOWING OFF", false},
	}
	for _, tc := range cases {
		if got := IsRead(tc.sql); got != tc.want {
			t.Errorf("IsRead(%q) = %v", tc.sql, got)
		}
	}
}

func TestWritesGoToMasterReadsToSlaves(t *testing.T) {
	env, px := topo(t, 1, 2, &RoundRobin{})
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		res, err := conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		if err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if !res.OnMaster {
			t.Error("write not routed to master")
		}
		p.Sleep(5 * time.Second) // let replication deliver
		r2, err := conn.Exec(p, "SELECT v FROM t WHERE id = 1")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if r2.OnMaster {
			t.Error("read routed to master despite live slaves")
		}
		if len(r2.Result.Set.Rows) != 1 {
			t.Errorf("read missed replicated row: %v", r2.Result.Set.Rows)
		}
	})
	env.RunUntil(time.Minute)
	st := px.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.MasterFallbacks != 0 {
		t.Fatalf("stats: %+v", st)
	}
	env.Stop()
	env.Shutdown()
}

func TestRoundRobinDistributesEvenly(t *testing.T) {
	env, px := topo(t, 2, 3, &RoundRobin{})
	conn := px.Connect("app")
	counts := map[string]int{}
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		for _, sl := range px.Master().Slaves() {
			counts[sl.Srv.Name] = int(sl.Srv.Stats().Reads)
		}
	})
	env.RunUntil(10 * time.Minute)
	for name, n := range counts {
		if n != 10 {
			t.Fatalf("%s served %d reads, want 10 each: %v", name, n, counts)
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestNoSlavesFallsBackToMaster(t *testing.T) {
	env, px := topo(t, 3, 0, &RoundRobin{})
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !res.OnMaster {
			t.Error("read with no slaves must hit the master")
		}
	})
	env.Run()
	if px.Stats().MasterFallbacks != 1 {
		t.Fatalf("stats: %+v", px.Stats())
	}
}

func TestDownSlaveSkipped(t *testing.T) {
	env, px := topo(t, 4, 2, &RoundRobin{})
	slaves := px.Master().Slaves()
	slaves[0].Srv.Inst.Terminate()
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	env.RunUntil(10 * time.Minute)
	if n := slaves[1].Srv.Stats().Reads; n != 10 {
		t.Fatalf("live slave served %d, want all 10", n)
	}
	env.Stop()
	env.Shutdown()
}

func TestMasterDownWriteFails(t *testing.T) {
	env, px := topo(t, 5, 1, &RoundRobin{})
	px.Master().Srv.Inst.Terminate()
	conn := px.Connect("app")
	var err error
	env.Go("client", func(p *sim.Proc) {
		_, err = conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
	})
	env.RunUntil(time.Minute)
	if err != ErrNoBackend {
		t.Fatalf("err = %v, want ErrNoBackend", err)
	}
	env.Stop()
	env.Shutdown()
}

func TestLeastLagPrefersFreshSlave(t *testing.T) {
	env, px := topo(t, 6, 2, LeastLag{})
	slaves := px.Master().Slaves()
	// Stop slave 0's applier so it falls behind.
	slaves[0].Stop()
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			conn.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
		}
		p.Sleep(10 * time.Second)
		for i := 0; i < 6; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	env.RunUntil(10 * time.Minute)
	if n := slaves[1].Srv.Stats().Reads; n != 6 {
		t.Fatalf("fresh slave served %d of 6 reads", n)
	}
	env.Stop()
	env.Shutdown()
}

func TestStalenessBoundedFallsBackToMaster(t *testing.T) {
	env, px := topo(t, 7, 1, &StalenessBounded{Strict: true})
	slaves := px.Master().Slaves()
	slaves[0].Stop() // slave will lag forever
	conn := px.Connect("app")
	var fellBack bool
	env.Go("client", func(p *sim.Proc) {
		conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		p.Sleep(5 * time.Second)
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		fellBack = res.OnMaster
		if res.Result.Set.Rows[0][0].Int() != 1 {
			t.Error("staleness-bounded read returned stale data")
		}
	})
	env.RunUntil(time.Minute)
	if !fellBack {
		t.Fatal("read should have fallen back to the master")
	}
	if px.Stats().MasterFallbacks != 1 {
		t.Fatalf("stats: %+v", px.Stats())
	}
	env.Stop()
	env.Shutdown()
}

func TestLeastConnBalancesInflight(t *testing.T) {
	env, px := topo(t, 8, 2, LeastConn{})
	// Two concurrent clients: least-conn must not send both to one slave.
	done := map[string]int{}
	for i := 0; i < 2; i++ {
		conn := px.Connect("app")
		env.Go("client", func(p *sim.Proc) {
			res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			_ = res
		})
	}
	env.Go("check", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		for _, sl := range px.Master().Slaves() {
			done[sl.Srv.Name] = int(sl.Srv.Stats().Reads)
		}
	})
	env.RunUntil(2 * time.Minute)
	for name, n := range done {
		if n != 1 {
			t.Fatalf("%s served %d reads, want 1 each: %v", name, n, done)
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestNetworkRoundTripInLatency(t *testing.T) {
	// Client in us-west-1a, backends in the same zone: every statement
	// pays ≥ 2×16ms of network.
	env, px := topo(t, 9, 1, &RoundRobin{})
	conn := px.Connect("app")
	var lat time.Duration
	env.Go("client", func(p *sim.Proc) {
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		lat = res.Latency
	})
	env.RunUntil(time.Minute)
	if lat < 32*time.Millisecond {
		t.Fatalf("client latency %v below the network floor", lat)
	}
	env.Stop()
	env.Shutdown()
}

func TestBalancerNames(t *testing.T) {
	cases := map[string]Balancer{
		"round-robin":       &RoundRobin{},
		"random":            Random{},
		"least-conn":        LeastConn{},
		"least-lag":         LeastLag{},
		"staleness-bounded": &StalenessBounded{},
	}
	for want, b := range cases {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	env, px := topo(t, 10, 1, &RoundRobin{})
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		if _, err := conn.Query(p, "INSERT INTO t (id, v) VALUES (1, 'x')"); err == nil {
			t.Error("Query accepted a statement with no result set")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestMonotonicReadViolations reproduces the consumer-observed consistency
// phenomenon of the authors' earlier CIDR work (cited as the paper's
// motivation): with round-robin reads over unevenly-lagged slaves, a
// client can read an older value after a newer one; the staleness-bounded
// balancer eliminates the regressions.
func TestMonotonicReadViolations(t *testing.T) {
	run := func(balancer Balancer) int {
		env, px := topo(t, 42, 2, balancer)
		// Pin one slave's CPU with competing work so its applier lags far
		// behind the other slave's.
		slow := px.Master().Slaves()[1].Srv
		for h := 0; h < 3; h++ {
			env.Go("hog", func(p *sim.Proc) {
				for p.Now() < 3*time.Minute {
					slow.Inst.Work(p, 200*time.Millisecond)
				}
			})
		}
		conn := px.Connect("app")
		violations := 0
		env.Go("client", func(p *sim.Proc) {
			last := int64(-1)
			for i := 0; p.Now() < 3*time.Minute; i++ {
				conn.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
				set, err := conn.Query(p, "SELECT COUNT(*) FROM t")
				if err != nil {
					continue
				}
				n := set.Rows[0][0].Int()
				if n < last {
					violations++
				}
				last = n
			}
		})
		env.RunUntil(4 * time.Minute)
		env.Stop()
		env.Shutdown()
		return violations
	}
	rr := run(&RoundRobin{})
	if rr == 0 {
		t.Fatal("round-robin over unevenly lagged slaves showed no monotonic-read violations")
	}
	sb := run(&StalenessBounded{Strict: true})
	if sb != 0 {
		t.Fatalf("staleness-bounded balancer still produced %d violations", sb)
	}
}

func TestBackendDyingMidFlightReturnsError(t *testing.T) {
	env, px := topo(t, 11, 1, &RoundRobin{})
	sl := px.Master().Slaves()[0]
	conn := px.Connect("app")
	var err error
	env.Go("client", func(p *sim.Proc) {
		_, err = conn.Exec(p, "SELECT COUNT(*) FROM t")
	})
	// Kill the slave while the read is in transit (the one-way latency is
	// 16ms; fire at 5ms).
	env.Schedule(5*time.Millisecond, func() { sl.Srv.Inst.Terminate() })
	env.RunUntil(time.Minute)
	if err == nil {
		t.Fatal("read to a dying backend succeeded silently")
	}
	env.Stop()
	env.Shutdown()
}

// TestReadYourWritesSessionConsistency: with RYW enabled a connection's
// read immediately after its own write never misses that write, even when
// slaves lag; other connections' reads still balance freely.
func TestReadYourWritesSessionConsistency(t *testing.T) {
	env, px := topo(t, 12, 2, &RoundRobin{})
	px.ReadYourWrites = true
	// Freeze both appliers so every slave lags behind the writes.
	for _, sl := range px.Master().Slaves() {
		sl.Stop()
	}
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := conn.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if got := res.Result.Set.Rows[0][0].Int(); got != int64(i+1) {
				t.Errorf("read-your-writes violated: count %d after %d writes", got, i+1)
			}
			if !res.OnMaster {
				t.Error("lagging slaves served a post-write read")
			}
		}
	})
	env.RunUntil(time.Minute)
	if px.Stats().MasterFallbacks != 5 {
		t.Fatalf("fallbacks: %d, want 5", px.Stats().MasterFallbacks)
	}
	env.Stop()
	env.Shutdown()
}

// TestReadYourWritesReleasesAfterCatchUp: once a slave applies the write,
// the same connection's reads return to the slaves.
func TestReadYourWritesReleasesAfterCatchUp(t *testing.T) {
	env, px := topo(t, 13, 2, &RoundRobin{})
	px.ReadYourWrites = true
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		p.Sleep(5 * time.Second) // replication lands
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if res.OnMaster {
			t.Error("read stuck on master after slaves caught up")
		}
		if res.Result.Set.Rows[0][0].Int() != 1 {
			t.Error("caught-up slave missing the write")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestFreshConnectionUnaffectedByRYW: a connection that never wrote keeps
// reading from slaves even when they lag (session, not global, consistency).
func TestFreshConnectionUnaffectedByRYW(t *testing.T) {
	env, px := topo(t, 14, 1, &RoundRobin{})
	px.ReadYourWrites = true
	px.Master().Slaves()[0].Stop()
	writer := px.Connect("app")
	reader := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		writer.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		res, err := reader.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if res.OnMaster {
			t.Error("non-writing connection was dragged to the master")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestRYWTokenSurvivesFailover kills the master between a connection's
// write and its read. The promoted master runs under a new epoch, so the
// old watermark — a sequence minted on the dead master's timeline — must
// not be compared against slaves that merely reached the same *number* on
// the new timeline: the read goes to the master, and the token is re-minted
// there. The scalar watermark this replaces served such reads from a slave.
func TestRYWTokenSurvivesFailover(t *testing.T) {
	env, px := topo(t, 21, 2, &RoundRobin{})
	px.Consistency = Session
	px.Retry.FailoverOnMasterDown = true
	px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
		// Promote the most-applied live slave under epoch+1 and re-attach
		// the rest at their applied positions — cluster.Failover's flow.
		old := px.Master()
		var best *repl.Slave
		for _, sl := range old.Slaves() {
			if sl.Srv.Up() && (best == nil || sl.AppliedSeq() > best.AppliedSeq()) {
				best = sl
			}
		}
		var rest []*repl.Slave
		for _, sl := range old.Slaves() {
			if sl != best {
				rest = append(rest, sl)
			}
			old.Detach(sl)
		}
		nm := repl.NewMaster(env, best.Srv, old.Net, repl.Async)
		nm.Epoch = old.Epoch + 1
		for _, o := range rest {
			nm.Attach(repl.NewSlave(env, o.Srv), o.AppliedSeq())
		}
		return nm, nil
	}
	// Starve both slaves' appliers so the connection's writes are still
	// unapplied anywhere when the master dies.
	for _, sl := range px.Master().Slaves() {
		srv := sl.Srv
		for h := 0; h < 2; h++ {
			env.Go("hog", func(p *sim.Proc) {
				for p.Now() < 5*time.Second {
					srv.Inst.Work(p, 50*time.Millisecond)
				}
			})
		}
	}
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			if _, err := conn.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		px.Master().Srv.Inst.Terminate()
		// No slave holds the watermark, so the read falls back to the
		// master, finds it dead, and promotes — landing on a new epoch the
		// token was not minted under.
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("post-failover read: %v", err)
			return
		}
		if !res.OnMaster {
			t.Error("post-failover read served by a slave on an old-epoch token")
		}
		if got := px.Stats().Failovers; got != 1 {
			t.Errorf("Failovers = %d, want 1", got)
		}
		if got := px.Stats().EpochFallbacks; got != 1 {
			t.Errorf("EpochFallbacks = %d, want 1", got)
		}
		// The fallback re-minted the token under the new epoch: once the
		// surviving slave catches up, reads are slave-eligible again rather
		// than pinned to the master.
		p.Sleep(10 * time.Second)
		res, err = conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("second read: %v", err)
			return
		}
		if res.OnMaster {
			t.Error("re-minted token still pins reads to the master")
		}
		if got := px.Stats().EpochFallbacks; got != 1 {
			t.Errorf("EpochFallbacks after re-mint = %d, want 1", got)
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestStalenessBoundedZeroValueServesSlaves: the zero value used to mean
// "zero events behind", which under any write load disqualified every slave
// and silently degenerated to master-only reads. Unset now means the
// default bound: a mildly lagging slave keeps serving.
func TestStalenessBoundedZeroValueServesSlaves(t *testing.T) {
	env, px := topo(t, 33, 1, &StalenessBounded{})
	slow := px.Master().Slaves()[0].Srv
	for h := 0; h < 2; h++ {
		env.Go("hog", func(p *sim.Proc) {
			for p.Now() < 30*time.Second {
				slow.Inst.Work(p, 50*time.Millisecond)
			}
		})
	}
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 1; i <= 10; i++ {
			if _, err := conn.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		// The hogged slave is a few events behind — within the default
		// bound, far from caught up.
		if got := px.Master().Slaves()[0].EventsBehindMaster(); got == 0 {
			t.Fatal("test setup: slave not lagging")
		}
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if res.OnMaster {
			t.Error("zero-value StalenessBounded degenerated to a master read")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}
