package proxy

import (
	"errors"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// topoAt builds master + slaves at explicit placements (client colocated
// with the master) so tests can partition individual paths.
func topoAt(t *testing.T, seed int64, masterPlace cloud.Placement, slavePlaces []cloud.Placement, balancer Balancer) (*sim.Env, *cloud.Cloud, *Proxy) {
	t.Helper()
	env := sim.NewEnv(seed)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	preload := func(srv *server.DBServer) {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}
	mSrv := server.New(env, "master", c.Launch("master", cloud.Small, masterPlace), server.DefaultCostModel())
	preload(mSrv)
	m := repl.NewMaster(env, mSrv, c.Network(), repl.Async)
	for i, pl := range slavePlaces {
		name := "slave" + string(rune('1'+i))
		sSrv := server.New(env, name, c.Launch(name, cloud.Small, pl), server.DefaultCostModel())
		preload(sSrv)
		m.Attach(repl.NewSlave(env, sSrv), mSrv.Log.LastSeq())
	}
	return env, c, New(env, c.Network(), m, masterPlace, balancer)
}

// TestTieBreakSpreadsReads: with every slave equally caught up, least-lag
// must not hot-spot the first slave — ties break randomly.
func TestTieBreakSpreadsReads(t *testing.T) {
	env, px := topo(t, 21, 2, LeastLag{})
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()
	for _, sl := range px.Master().Slaves() {
		if n := sl.Srv.Stats().Reads; n < 10 {
			t.Fatalf("%s served only %d of 40 tied reads — tie-break not spreading", sl.Srv.Name, n)
		}
	}
}

// TestLeastConnTieBreakSpreads: same property for least-conn on an idle
// cluster (every in-flight count is zero).
func TestLeastConnTieBreakSpreads(t *testing.T) {
	env, px := topo(t, 22, 2, LeastConn{})
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()
	for _, sl := range px.Master().Slaves() {
		if n := sl.Srv.Stats().Reads; n < 10 {
			t.Fatalf("%s served only %d of 40 tied reads", sl.Srv.Name, n)
		}
	}
}

// TestRetryMasksMidFlightCrash: the only slave dies while a read is on the
// wire; with a retry policy the statement is re-attempted and lands on the
// master instead of surfacing the error.
func TestRetryMasksMidFlightCrash(t *testing.T) {
	env, px := topo(t, 23, 1, &RoundRobin{})
	px.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond}
	sl := px.Master().Slaves()[0]
	conn := px.Connect("app")
	var res *ExecResult
	var err error
	env.Go("client", func(p *sim.Proc) {
		res, err = conn.Exec(p, "SELECT COUNT(*) FROM t")
	})
	env.Schedule(5*time.Millisecond, func() { sl.Srv.Inst.Terminate() })
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
	if err != nil {
		t.Fatalf("retried read still failed: %v", err)
	}
	if !res.OnMaster {
		t.Fatal("retry should have fallen back to the master")
	}
	st := px.Stats()
	if st.Retries == 0 {
		t.Fatalf("stats show no retry: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("masked failure still counted as an error: %+v", st)
	}
}

// TestZeroPolicyKeepsLegacySingleAttempt: the zero-value RetryPolicy must
// not retry, so existing callers see the first error unchanged.
func TestZeroPolicyKeepsLegacySingleAttempt(t *testing.T) {
	env, px := topo(t, 24, 1, &RoundRobin{})
	sl := px.Master().Slaves()[0]
	conn := px.Connect("app")
	var err error
	env.Go("client", func(p *sim.Proc) {
		_, err = conn.Exec(p, "SELECT COUNT(*) FROM t")
	})
	env.Schedule(5*time.Millisecond, func() { sl.Srv.Inst.Terminate() })
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
	if err == nil {
		t.Fatal("zero policy retried a failed statement")
	}
	if st := px.Stats(); st.Retries != 0 || st.Errors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSlaveEvictionAndReadmission: a partition makes one slave time out
// repeatedly; the proxy benches it, serves reads from the survivor, and
// readmits it after the window once the partition heals.
func TestSlaveEvictionAndReadmission(t *testing.T) {
	zoneA := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	zoneB := cloud.Placement{Region: cloud.USWest1, Zone: "b"}
	env, c, px := topoAt(t, 25, zoneA, []cloud.Placement{zoneA, zoneB}, &RoundRobin{})
	px.Retry = RetryPolicy{
		MaxAttempts:      2,
		BaseBackoff:      10 * time.Millisecond,
		StatementTimeout: time.Second,
		EvictAfter:       2,
		ReadmitAfter:     5 * time.Second,
	}
	c.Network().Partition(zoneA, zoneB)

	conn := px.Connect("app")
	var errsBeforeHeal int
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				errsBeforeHeal++
			}
		}
		// Heal and sit out the readmission window; the benched slave must
		// return to rotation.
		c.Network().Heal(zoneA, zoneB)
		p.Sleep(6 * time.Second)
		before := px.Master().Slaves()[1].Srv.Stats().Reads
		for i := 0; i < 8; i++ {
			if _, err := conn.Exec(p, "SELECT COUNT(*) FROM t"); err != nil {
				t.Errorf("post-heal read: %v", err)
			}
		}
		if after := px.Master().Slaves()[1].Srv.Stats().Reads; after == before {
			t.Error("readmitted slave served no reads after the heal")
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()

	st := px.Stats()
	if errsBeforeHeal != 0 {
		t.Fatalf("%d reads failed despite retry to the healthy slave", errsBeforeHeal)
	}
	if st.Timeouts < 2 {
		t.Fatalf("timeouts = %d, want ≥ 2 (the eviction threshold)", st.Timeouts)
	}
	if st.SlaveEvictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", st.SlaveEvictions)
	}
	if st.SlaveReadmissions != 1 {
		t.Fatalf("readmissions = %d, want exactly 1", st.SlaveReadmissions)
	}
}

// TestStatementTimeoutOnPartitionedMaster: a write toward an unreachable
// master fails with ErrStatementTimeout after the configured bound instead
// of hanging forever.
func TestStatementTimeoutOnPartitionedMaster(t *testing.T) {
	zoneA := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	zoneB := cloud.Placement{Region: cloud.USWest1, Zone: "b"}
	// Master in zone a; client (proxy) in zone b; no slaves.
	env, c, px := topoAt(t, 26, zoneA, nil, &RoundRobin{})
	pxB := New(env, c.Network(), px.Master(), zoneB, &RoundRobin{})
	pxB.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, StatementTimeout: time.Second}
	c.Network().Partition(zoneA, zoneB)

	conn := pxB.Connect("app")
	var err error
	var took sim.Time
	env.Go("client", func(p *sim.Proc) {
		t0 := p.Now()
		_, err = conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		took = p.Now() - t0
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("err = %v, want ErrStatementTimeout", err)
	}
	if took < 2*time.Second || took > 5*time.Second {
		t.Fatalf("two bounded attempts took %v", took)
	}
	st := pxB.Stats()
	if st.Timeouts != 2 || st.Retries != 1 || st.Errors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFailoverHookPromotesOnMasterDown: a dead master triggers the
// OnMasterFailure hook instead of a permanent ErrNoBackend; the proxy
// re-points itself and the write lands on the promoted server.
func TestFailoverHookPromotesOnMasterDown(t *testing.T) {
	env, c, px := topoAt(t, 27,
		cloud.Placement{Region: cloud.USWest1, Zone: "a"},
		[]cloud.Placement{{Region: cloud.USWest1, Zone: "a"}}, &RoundRobin{})
	sl := px.Master().Slaves()[0]
	old := px.Master()
	hookCalls := 0
	px.Retry = RetryPolicy{FailoverOnMasterDown: true}
	px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
		hookCalls++
		old.Detach(sl)
		return repl.NewMaster(env, sl.Srv, c.Network(), repl.Async), nil
	}
	px.Master().Srv.Inst.Terminate()

	conn := px.Connect("app")
	var res *ExecResult
	var err error
	env.Go("client", func(p *sim.Proc) {
		res, err = conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		// A second write must reuse the promoted master, not re-promote.
		if _, err2 := conn.Exec(p, "INSERT INTO t (id, v) VALUES (2, 'y')"); err2 != nil {
			t.Errorf("post-failover write: %v", err2)
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	if err != nil {
		t.Fatalf("write during failover: %v", err)
	}
	if !res.OnMaster {
		t.Fatal("write not on the (promoted) master")
	}
	if px.Master().Srv != sl.Srv {
		t.Fatal("proxy still pointing at the dead master")
	}
	if hookCalls != 1 {
		t.Fatalf("hook called %d times, want once", hookCalls)
	}
	if st := px.Stats(); st.Failovers != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestNoFailoverWithoutPolicy: with FailoverOnMasterDown unset the hook is
// never consulted and the legacy ErrNoBackend surfaces.
func TestNoFailoverWithoutPolicy(t *testing.T) {
	env, px := topo(t, 28, 1, &RoundRobin{})
	px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
		t.Error("hook invoked despite FailoverOnMasterDown=false")
		return nil, nil
	}
	px.Master().Srv.Inst.Terminate()
	conn := px.Connect("app")
	var err error
	env.Go("client", func(p *sim.Proc) {
		_, err = conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
	if !errors.Is(err, ErrNoBackend) {
		t.Fatalf("err = %v, want ErrNoBackend", err)
	}
}

// TestReadYourWritesAllStaleFallsBackToMaster: with every slave crashed
// (not merely lagging), a RYW connection's post-write read still succeeds
// via the master fallback.
func TestReadYourWritesAllStaleFallsBackToMaster(t *testing.T) {
	env, px := topo(t, 29, 2, &RoundRobin{})
	px.ReadYourWrites = true
	for _, sl := range px.Master().Slaves() {
		sl.Srv.Inst.Terminate()
	}
	conn := px.Connect("app")
	env.Go("client", func(p *sim.Proc) {
		if _, err := conn.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')"); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		res, err := conn.Exec(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !res.OnMaster {
			t.Error("read with every slave dead must hit the master")
		}
		if res.Result.Set.Rows[0][0].Int() != 1 {
			t.Error("master fallback missed the session's own write")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestBackoffGrowsAndCaps: the backoff schedule doubles from BaseBackoff
// and respects MaxBackoff; jitter stays within ±JitterFrac.
func TestBackoffGrowsAndCaps(t *testing.T) {
	env := sim.NewEnv(30)
	rng := env.Rand()
	rp := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	for n, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 400 * time.Millisecond, // capped
	} {
		if got := rp.backoff(n, rng); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", n, got, want)
		}
	}
	jit := RetryPolicy{BaseBackoff: 100 * time.Millisecond, JitterFrac: 0.5}
	for i := 0; i < 100; i++ {
		d := jit.backoff(1, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%% of 100ms", d)
		}
	}
	env.Shutdown()
}
