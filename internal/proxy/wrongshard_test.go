package proxy

import (
	"errors"
	"testing"
	"time"

	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// TestWrongShardNotRetried: an ownership rejection is a routing verdict, not
// an infrastructure fault. The proxy must surface ErrWrongShard immediately —
// zero backend attempts, zero blind retries — so the shard client can refresh
// its map snapshot and re-route instead of burning the retry budget here.
func TestWrongShardNotRetried(t *testing.T) {
	env, px := topo(t, 31, 1, &RoundRobin{})
	px.Retry = RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond}
	checks := 0
	px.CheckOwner = func(sql string, args []sqlengine.Value) error {
		checks++
		return ErrNotOwner // the shard alias; must satisfy errors.Is(ErrWrongShard)
	}
	conn := px.Connect("app")

	env.Go("client", func(p *sim.Proc) {
		before := p.Now()
		_, err := conn.Exec(p, "SELECT v FROM t WHERE id = ?", sqlengine.NewInt(1))
		if !errors.Is(err, ErrWrongShard) {
			t.Errorf("err = %v, want ErrWrongShard", err)
		}
		if elapsed := p.Now() - before; elapsed != 0 {
			t.Errorf("rejection took %v of simulated time; it must not sleep in backoff", elapsed)
		}
	})
	env.RunUntil(time.Second)
	env.Stop()
	env.Shutdown()

	if checks != 1 {
		t.Fatalf("CheckOwner ran %d times, want exactly 1 (no retry loop)", checks)
	}
	s := px.Stats()
	if s.WrongShard != 1 {
		t.Fatalf("WrongShard = %d, want 1", s.WrongShard)
	}
	if s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 — ErrWrongShard must not be blindly retried", s.Retries)
	}
	if s.Errors != 0 {
		t.Fatalf("Errors = %d, want 0 — rejection happens before the attempt loop", s.Errors)
	}
}
