package elastic

import (
	"fmt"
	"strings"
	"time"

	"cloudrepl/internal/cluster"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
)

// Config tunes the controller.
type Config struct {
	// Interval between monitor ticks (default 5 s).
	Interval time.Duration
	// Window is the rolling-window width for every monitored signal
	// (default 60 s).
	Window time.Duration
	// Cooldown is the minimum time between scaling actions, restarted when
	// a provisioned replica is admitted (default 90 s). It gives the tier
	// time to settle so one overload burst cannot trigger a slave stampede.
	Cooldown time.Duration
	// SettleAfterScale is how long after admitting a new replica the
	// controller waits before judging whether the scale-out actually
	// improved throughput (default = Window).
	SettleAfterScale time.Duration
	// MinSlaves/MaxSlaves bound the fleet (defaults 1 and 8).
	MinSlaves, MaxSlaves int
	// WarmupMaxLagEvents: a freshly provisioned replica stays quarantined
	// until it is at most this many binlog events behind the master
	// (default 5). Until then the proxy serves no reads from it.
	WarmupMaxLagEvents uint64
	// MasterHighWater: when the master's windowed CPU utilization is at or
	// above this, scale-out is refused and the controller declares the tier
	// master-bound (default 0.90) — more read replicas cannot help a tier
	// whose write master has no headroom.
	MasterHighWater float64
	// MinTpGainFrac: a scale-out must improve windowed throughput by at
	// least this fraction (judged SettleAfterScale after admission) while
	// the master is near its high water, or the replica is rolled back and
	// the tier declared master-bound (default 0.05).
	MinTpGainFrac float64
	// DrainTimeout bounds the in-flight-read drain during scale-in
	// (default 30 s).
	DrainTimeout time.Duration
	// Spec places newly provisioned replicas.
	Spec cluster.NodeSpec
	// Policy decides scaling. nil runs the controller in observe-only
	// mode: it monitors, traces and accounts, but never scales — how the
	// fixed-fleet baselines are measured with identical instrumentation.
	Policy Policy
	// ScaleCell, when set, is the escape hatch past the master ceiling:
	// the controller invokes it (in its own process) each time it declares
	// the tier master-bound. Read replicas cannot relieve a saturated
	// write master, but splitting the tier into another shard cell can —
	// wire this to core.DB.SplitShard. On success the master-bound verdict
	// is cleared so replica scaling resumes in the new, smaller cell; on
	// failure the verdict stands.
	ScaleCell func(p *sim.Proc) error
	// SLOTargetMs is the staleness objective used for violation accounting
	// in the trace (default 500 ms). It is an accounting knob, independent
	// of whichever policy is steering.
	SLOTargetMs float64
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 90 * time.Second
	}
	if c.SettleAfterScale <= 0 {
		c.SettleAfterScale = c.Window
	}
	if c.MinSlaves <= 0 {
		c.MinSlaves = 1
	}
	if c.MaxSlaves <= 0 {
		c.MaxSlaves = 8
	}
	if c.WarmupMaxLagEvents == 0 {
		c.WarmupMaxLagEvents = 5
	}
	if c.MasterHighWater <= 0 {
		c.MasterHighWater = 0.90
	}
	if c.MinTpGainFrac <= 0 {
		c.MinTpGainFrac = 0.05
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.SLOTargetMs <= 0 {
		c.SLOTargetMs = 500
	}
}

// Decision is one entry of the controller's decision log.
type Decision struct {
	T sim.Time
	// Action is one of "scale-out", "admit", "scale-in", "drained",
	// "master-bound", "rollback", "provision-failed", "cell-added",
	// "cell-scale-failed".
	Action string
	// Slave names the replica involved, when one is.
	Slave string
	// Slaves is the admitted fleet size when the decision was taken.
	Slaves int
	Reason string
}

// String renders the decision as one log line.
func (d Decision) String() string {
	s := fmt.Sprintf("[%8s] %-13s", d.T.Truncate(time.Millisecond), d.Action)
	if d.Slave != "" {
		s += " " + d.Slave
	}
	if d.Reason != "" {
		s += "  — " + d.Reason
	}
	return s
}

// Controller is the monitor → policy → actuator loop, running as one
// simulation process.
type Controller struct {
	env *sim.Env
	src Sources
	cfg Config
	mon *Monitor

	trace     []Sample
	decisions []Decision

	stopped      bool
	provisioning bool          // a replica is being snapshotted/warmed
	warming      []*repl.Slave // provisioned, quarantined, catching up
	lastScale    sim.Time
	// preScaleTp is the windowed throughput right before the last
	// scale-out — the baseline the improvement judgment compares against.
	preScaleTp float64

	masterBound       bool
	masterBoundAt     sim.Time
	masterBoundSlaves int
	cellScaling       bool // a ScaleCell (shard split) is in flight

	judge *judgeState
}

// judgeState tracks a pending did-the-scale-out-help verdict.
type judgeState struct {
	preTp float64
	at    sim.Time
	slave *repl.Slave
}

// Start wires a controller onto the tier and launches its tick loop.
func Start(env *sim.Env, cfg Config, src Sources) *Controller {
	cfg.defaults()
	c := &Controller{
		env: env,
		src: src,
		cfg: cfg,
		mon: NewMonitor(env, src, cfg.Window),
	}
	env.Go("elastic", func(p *sim.Proc) {
		for !c.stopped {
			c.tick(p)
			p.Sleep(c.cfg.Interval)
		}
	})
	return c
}

// Stop halts the tick loop after the current tick.
func (c *Controller) Stop() { c.stopped = true }

// Trace returns every sample the monitor took, in order.
func (c *Controller) Trace() []Sample { return c.trace }

// Decisions returns the decision log.
func (c *Controller) Decisions() []Decision { return c.decisions }

// PublishMetrics snapshots the controller's scaling activity into reg under
// the "elastic." prefix: one counter per decision kind, plus a master-bound
// flag gauge.
func (c *Controller) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	counts := map[string]int{}
	for _, d := range c.decisions {
		counts[d.Action]++
	}
	// Fixed action vocabulary (see Decision.Action) so the published set
	// of names does not depend on which decisions happened to fire.
	for _, action := range []string{"scale-out", "admit", "scale-in",
		"drained", "master-bound", "rollback", "provision-failed",
		"cell-added", "cell-scale-failed"} {
		name := "elastic." + strings.ReplaceAll(action, "-", "_")
		reg.Counter(name).Set(float64(counts[action]))
	}
	bound, _, _ := c.MasterBound()
	v := 0.0
	if bound {
		v = 1
	}
	reg.Gauge("elastic.is_master_bound").Set(v)
}

// MasterBound reports whether the controller has declared the tier
// master-bound, and when and at what admitted fleet size it did.
func (c *Controller) MasterBound() (bool, sim.Time, int) {
	return c.masterBound, c.masterBoundAt, c.masterBoundSlaves
}

// Verdict summarizes the controller's conclusion about the tier.
func (c *Controller) Verdict() string {
	if c.masterBound {
		return fmt.Sprintf("master-bound at %d slave(s) since %s",
			c.masterBoundSlaves, c.masterBoundAt.Truncate(time.Second))
	}
	return "scaling"
}

// SLOViolation integrates the time the admitted fleet's worst current
// staleness exceeded targetMs over the traced run — the "how long were
// clients exposed to data older than the objective" figure. A tick's state
// is held until the next tick (left-continuous step function).
func (c *Controller) SLOViolation(targetMs float64) time.Duration {
	var v time.Duration
	for i := 1; i < len(c.trace); i++ {
		if c.trace[i-1].WorstAdmittedStalenessMs > targetMs {
			v += time.Duration(c.trace[i].T - c.trace[i-1].T)
		}
	}
	return v
}

func (c *Controller) record(p *sim.Proc, action, slave, reason string, admitted int) {
	c.decisions = append(c.decisions, Decision{
		T: p.Now(), Action: action, Slave: slave, Slaves: admitted, Reason: reason,
	})
}

func (c *Controller) tick(p *sim.Proc) {
	s := c.mon.Sample()
	c.trace = append(c.trace, s)

	c.admitWarmed(p, s)
	c.judgeImprovement(p, s)

	if c.cfg.Policy == nil {
		return
	}
	act, reason := c.cfg.Policy.Decide(s)
	switch act {
	case ScaleOut:
		c.tryScaleOut(p, s, reason)
	case ScaleIn:
		c.tryScaleIn(p, s, reason)
	}
}

// admitWarmed admits quarantined replicas that have caught up to within the
// warm-up lag threshold, and drops any that died while warming.
func (c *Controller) admitWarmed(p *sim.Proc, s Sample) {
	keep := c.warming[:0]
	for _, sl := range c.warming {
		switch {
		case !sl.Srv.Up():
			c.provisioning = false
			c.record(p, "provision-failed", sl.Srv.Name, "instance died during warm-up", s.AdmittedCount)
		case sl.EventsBehindMaster() <= c.cfg.WarmupMaxLagEvents:
			c.src.Proxy.Admit(sl)
			c.provisioning = false
			c.lastScale = p.Now()
			c.record(p, "admit", sl.Srv.Name,
				fmt.Sprintf("caught up to %d event(s) behind; serving reads", sl.EventsBehindMaster()),
				s.AdmittedCount+1)
			if c.judge == nil {
				c.judge = &judgeState{
					preTp: c.preScaleTp,
					at:    p.Now() + c.cfg.SettleAfterScale,
					slave: sl,
				}
			}
		default:
			keep = append(keep, sl)
		}
	}
	c.warming = keep
}

// judgeImprovement checks, SettleAfterScale after an admission, whether the
// scale-out moved throughput. If it did not and the master has no CPU
// headroom, the added replica was pure cost: it is rolled back and the tier
// declared master-bound.
func (c *Controller) judgeImprovement(p *sim.Proc, s Sample) {
	if c.judge == nil || p.Now() < c.judge.at {
		return
	}
	j := c.judge
	c.judge = nil
	if c.masterBound {
		return
	}
	gain := 0.0
	if j.preTp > 0 {
		gain = (s.Throughput - j.preTp) / j.preTp
	}
	if gain >= c.cfg.MinTpGainFrac || s.MasterUtil < 0.95*c.cfg.MasterHighWater {
		return
	}
	c.declareMasterBound(p, s.AdmittedCount-1,
		fmt.Sprintf("throughput %+.1f%% after adding %s with master CPU at %.0f%% — scale-out no longer helps",
			gain*100, j.slave.Srv.Name, s.MasterUtil*100))
	// Roll back the replica that bought nothing.
	if c.attached(j.slave) && j.slave.Srv.Up() {
		c.record(p, "rollback", j.slave.Srv.Name, "removing ineffective replica", s.AdmittedCount)
		c.removeGraceful(p, j.slave)
	}
}

func (c *Controller) declareMasterBound(p *sim.Proc, slaves int, reason string) {
	if c.masterBound {
		return
	}
	c.masterBound = true
	c.masterBoundAt = p.Now()
	c.masterBoundSlaves = slaves
	c.record(p, "master-bound", "", reason, slaves)
	c.scaleCell(slaves)
}

// scaleCell launches the configured past-the-master escape hatch (a shard
// split) once per master-bound declaration. Success clears the verdict —
// the cell the controller steers now owns half its former keyspace, so the
// master has headroom again and replica scaling resumes; failure leaves
// the verdict standing so the run's conclusion stays honest.
func (c *Controller) scaleCell(slaves int) {
	if c.cfg.ScaleCell == nil || c.cellScaling {
		return
	}
	c.cellScaling = true
	c.env.Go("elastic/scale-cell", func(pp *sim.Proc) {
		err := c.cfg.ScaleCell(pp)
		c.cellScaling = false
		if err != nil {
			c.record(pp, "cell-scale-failed", "", err.Error(), slaves)
			return
		}
		c.masterBound = false
		c.lastScale = pp.Now()
		c.record(pp, "cell-added", "", "tier split into a new shard cell; master ceiling lifted", slaves)
	})
}

func (c *Controller) tryScaleOut(p *sim.Proc, s Sample, reason string) {
	now := p.Now()
	switch {
	case c.masterBound, c.provisioning, len(c.warming) > 0:
		return
	case now-c.lastScale < c.cfg.Cooldown:
		return
	case len(c.src.Cluster.Slaves()) >= c.cfg.MaxSlaves:
		return
	}
	if s.MasterUtil >= c.cfg.MasterHighWater {
		// Growing the read fleet cannot relieve a saturated write master.
		c.declareMasterBound(p, s.AdmittedCount,
			fmt.Sprintf("master CPU %.0f%% ≥ %.0f%% high water; refusing scale-out (%s)",
				s.MasterUtil*100, c.cfg.MasterHighWater*100, reason))
		return
	}
	c.provisioning = true
	c.lastScale = now
	c.preScaleTp = s.Throughput
	c.record(p, "scale-out", "", reason, s.AdmittedCount)
	c.env.Go("elastic/provision", func(pp *sim.Proc) {
		sl, err := c.src.Cluster.ProvisionSlave(pp, c.cfg.Spec)
		if err != nil {
			c.provisioning = false
			c.record(pp, "provision-failed", "", err.Error(), 0)
			return
		}
		// ProvisionSlave returns without yielding after attach, so the
		// quarantine lands before any read can route to the new node.
		c.src.Proxy.Quarantine(sl)
		c.warming = append(c.warming, sl)
	})
}

func (c *Controller) tryScaleIn(p *sim.Proc, s Sample, reason string) {
	now := p.Now()
	switch {
	case c.provisioning, len(c.warming) > 0:
		return
	case now-c.lastScale < c.cfg.Cooldown:
		return
	case s.AdmittedCount <= c.cfg.MinSlaves:
		return
	}
	victim := c.mostLaggedAdmitted()
	if victim == nil {
		return
	}
	c.lastScale = now
	c.record(p, "scale-in", victim.Srv.Name, reason, s.AdmittedCount)
	c.removeGraceful(p, victim)
}

// removeGraceful spawns the quarantine → drain → terminate sequence so the
// tick loop keeps running while in-flight reads drain.
func (c *Controller) removeGraceful(p *sim.Proc, sl *repl.Slave) {
	c.env.Go("elastic/drain", func(pp *sim.Proc) {
		abandoned := c.src.Proxy.Drain(pp, sl, c.cfg.DrainTimeout)
		c.src.Cluster.RemoveSlave(sl)
		c.src.Proxy.Forget(sl)
		c.record(pp, "drained", sl.Srv.Name,
			fmt.Sprintf("instance terminated (%d read(s) abandoned)", abandoned), 0)
	})
}

func (c *Controller) mostLaggedAdmitted() *repl.Slave {
	var worst *repl.Slave
	for _, sl := range c.src.Cluster.Slaves() {
		if !sl.Srv.Up() || c.src.Proxy.Quarantined(sl) {
			continue
		}
		if worst == nil || sl.EventsBehindMaster() > worst.EventsBehindMaster() {
			worst = sl
		}
	}
	return worst
}

func (c *Controller) attached(sl *repl.Slave) bool {
	for _, s := range c.src.Cluster.Slaves() {
		if s == sl {
			return true
		}
	}
	return false
}
