package elastic

import "fmt"

// Action is a policy's verdict for one tick.
type Action int

const (
	// Hold keeps the fleet as it is.
	Hold Action = iota
	// ScaleOut asks for one more replica.
	ScaleOut
	// ScaleIn asks for one fewer replica.
	ScaleIn
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return "hold"
	}
}

// Policy maps one monitor sample to a desired fleet change. Policies are
// pure decision logic: hysteresis lives in their thresholds, while cooldown,
// warm-up, fleet bounds and master-bound suppression are enforced by the
// controller, identically for every policy.
type Policy interface {
	Name() string
	// Decide returns the desired action and a human-readable reason.
	Decide(s Sample) (Action, string)
}

// ReactiveUtilization scales on slave CPU pressure: out when the admitted
// fleet's mean utilization crosses HighWater, in when it falls below
// LowWater. The gap between the watermarks is the hysteresis band that keeps
// the fleet from oscillating around a single threshold.
type ReactiveUtilization struct {
	// HighWater triggers scale-out (default 0.75).
	HighWater float64
	// LowWater triggers scale-in (default 0.30).
	LowWater float64
}

// Name implements Policy.
func (ReactiveUtilization) Name() string { return "reactive-util" }

func (p ReactiveUtilization) high() float64 {
	if p.HighWater > 0 {
		return p.HighWater
	}
	return 0.75
}

func (p ReactiveUtilization) low() float64 {
	if p.LowWater > 0 {
		return p.LowWater
	}
	return 0.30
}

// Decide implements Policy.
func (p ReactiveUtilization) Decide(s Sample) (Action, string) {
	if s.AdmittedCount == 0 {
		return Hold, "no admitted slaves"
	}
	if u := s.MeanAdmittedUtil; u >= p.high() {
		return ScaleOut, fmt.Sprintf("mean slave CPU %.0f%% ≥ %.0f%% high water (pool waits %.1f/s)",
			u*100, p.high()*100, s.PoolWaitRate)
	}
	if u := s.MeanAdmittedUtil; u <= p.low() {
		return ScaleIn, fmt.Sprintf("mean slave CPU %.0f%% ≤ %.0f%% low water", u*100, p.low()*100)
	}
	return Hold, ""
}

// StalenessSLO scales on the service-level objective the application
// actually cares about: the p95 age of the data its reads can observe. A
// saturated replica's applier starves behind client reads and its staleness
// grows without bound, so this policy reacts to overload through the same
// signal that defines the violation — no CPU threshold to mistune. Scale-in
// is double-guarded (deep SLO headroom and projected post-removal CPU) so
// shedding a replica cannot immediately re-violate the objective.
type StalenessSLO struct {
	// TargetP95Ms is the objective: windowed p95 staleness of the worst
	// admitted replica must stay below this (default 500 ms).
	TargetP95Ms float64
	// ScaleInFraction: scale in only when p95 staleness is below this
	// fraction of the target (default 0.2).
	ScaleInFraction float64
	// UtilGuard: scale in only if the remaining replicas' projected mean
	// CPU stays below this (default 0.60).
	UtilGuard float64
}

// Name implements Policy.
func (StalenessSLO) Name() string { return "staleness-slo" }

func (p StalenessSLO) target() float64 {
	if p.TargetP95Ms > 0 {
		return p.TargetP95Ms
	}
	return 500
}

func (p StalenessSLO) frac() float64 {
	if p.ScaleInFraction > 0 {
		return p.ScaleInFraction
	}
	return 0.2
}

func (p StalenessSLO) guard() float64 {
	if p.UtilGuard > 0 {
		return p.UtilGuard
	}
	return 0.60
}

// Decide implements Policy.
func (p StalenessSLO) Decide(s Sample) (Action, string) {
	if s.AdmittedCount == 0 {
		return Hold, "no admitted slaves"
	}
	if s.WorstAdmittedP95Ms > p.target() {
		return ScaleOut, fmt.Sprintf("p95 staleness %.0f ms > %.0f ms SLO", s.WorstAdmittedP95Ms, p.target())
	}
	if s.AdmittedCount > 1 && s.WorstAdmittedP95Ms < p.frac()*p.target() {
		projected := s.MeanAdmittedUtil * float64(s.AdmittedCount) / float64(s.AdmittedCount-1)
		if projected <= p.guard() {
			return ScaleIn, fmt.Sprintf("p95 staleness %.0f ms ≪ SLO and projected CPU %.0f%% ≤ %.0f%% guard",
				s.WorstAdmittedP95Ms, projected*100, p.guard()*100)
		}
	}
	return Hold, ""
}
