// Package elastic closes the control loop the paper's elasticity experiments
// run by hand: it watches the replicated database tier (CPU utilization,
// throughput, pool queueing, per-slave replication staleness), asks a policy
// whether the slave fleet should grow or shrink, and actuates the decision
// through the cluster (snapshot provisioning) and the proxy (warm-up
// quarantine, graceful drain). Its distinguishing feature is master-bound
// detection: §V of the paper shows that with a 50/50 read/write mix the
// master saturates at ~3 slaves, after which adding replicas buys nothing —
// the controller recognises that point, rolls back the ineffective replica,
// and surfaces a MasterBound verdict instead of flapping against the ceiling.
package elastic

import (
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
)

// Sources tells the monitor where to read its signals. Cluster and Proxy are
// required; Ops and PoolWaits are cumulative counters sampled each tick (nil
// means the corresponding signal reads as zero).
type Sources struct {
	Cluster *cluster.Cluster
	Proxy   *proxy.Proxy
	// Ops returns the cumulative number of completed client operations.
	Ops func() float64
	// PoolWaits returns the cumulative number of pool borrows that had to
	// queue — the application-side symptom of a saturated backend.
	PoolWaits func() float64
}

// SlaveSample is one replica's state at a monitor tick.
type SlaveSample struct {
	Name string
	// Util is the node's CPU utilization over the monitor window.
	Util float64
	// StalenessMs is the age of the oldest binlog event this replica has
	// not applied yet (0 when caught up).
	StalenessMs float64
	// P95StalenessMs is the 95th-percentile staleness over the window.
	P95StalenessMs float64
	// LagEvents is the number of binlog events behind the master.
	LagEvents uint64
	// Admitted reports whether the proxy routes reads to this replica.
	Admitted bool
}

// Sample is one tick's view of the whole tier.
type Sample struct {
	T sim.Time
	// MasterUtil is the master's CPU utilization over the window.
	MasterUtil float64
	// Throughput is completed client operations per second over the window.
	Throughput float64
	// PoolWaitRate is pool-borrow waits per second over the window.
	PoolWaitRate float64
	// Slaves lists every attached replica in attach order.
	Slaves []SlaveSample

	// AdmittedCount is the number of replicas serving reads.
	AdmittedCount int
	// MeanAdmittedUtil averages Util over admitted replicas.
	MeanAdmittedUtil float64
	// WorstAdmittedStalenessMs is the worst current staleness across
	// admitted replicas — what a client read can actually observe.
	WorstAdmittedStalenessMs float64
	// WorstAdmittedP95Ms is the worst windowed p95 staleness across
	// admitted replicas — the signal the SLO policy steers on.
	WorstAdmittedP95Ms float64
}

// Monitor samples the tier into rolling windows. It is driven by the
// controller's tick loop; Sample must be called from a simulation callback
// or process (single-threaded scheduler, no locking needed).
type Monitor struct {
	env    *sim.Env
	src    Sources
	window time.Duration

	tput  *metrics.WindowedRate
	waits *metrics.WindowedRate
	busy  map[*cloud.Instance]*metrics.WindowedRate
	stale map[*repl.Slave]*metrics.RollingWindow
}

// NewMonitor creates a monitor with the given rolling-window width.
func NewMonitor(env *sim.Env, src Sources, window time.Duration) *Monitor {
	if window <= 0 {
		window = 60 * time.Second
	}
	return &Monitor{
		env:    env,
		src:    src,
		window: window,
		tput:   metrics.NewWindowedRate(window),
		waits:  metrics.NewWindowedRate(window),
		busy:   make(map[*cloud.Instance]*metrics.WindowedRate),
		stale:  make(map[*repl.Slave]*metrics.RollingWindow),
	}
}

// Window returns the monitor's rolling-window width.
func (m *Monitor) Window() time.Duration { return m.window }

// nodeUtil observes the instance's cumulative busy-seconds counter and
// returns its windowed CPU utilization (fraction of capacity). BusySeconds
// resets with the resource stats; WindowedRate's counter-reset guard makes
// that a transient zero rather than a negative rate.
func (m *Monitor) nodeUtil(now sim.Time, inst *cloud.Instance) float64 {
	w := m.busy[inst]
	if w == nil {
		w = metrics.NewWindowedRate(m.window)
		m.busy[inst] = w
	}
	w.Observe(now, inst.CPU.BusySeconds())
	return w.Rate() / float64(inst.CPU.Cap())
}

// Sample reads every signal once and folds it into the rolling windows.
func (m *Monitor) Sample() Sample {
	now := m.env.Now()
	s := Sample{T: now}

	if m.src.Ops != nil {
		m.tput.Observe(now, m.src.Ops())
		s.Throughput = m.tput.Rate()
	}
	if m.src.PoolWaits != nil {
		m.waits.Observe(now, m.src.PoolWaits())
		s.PoolWaitRate = m.waits.Rate()
	}

	master := m.src.Cluster.Master()
	s.MasterUtil = m.nodeUtil(now, master.Srv.Inst)

	slaves := master.Slaves()
	var utilSum float64
	for _, sl := range slaves {
		rw := m.stale[sl]
		if rw == nil {
			rw = metrics.NewRollingWindow(m.window)
			m.stale[sl] = rw
		}
		staleMs := float64(sl.Staleness(now)) / float64(time.Millisecond)
		rw.Observe(now, staleMs)

		ss := SlaveSample{
			Name:           sl.Srv.Name,
			Util:           m.nodeUtil(now, sl.Srv.Inst),
			StalenessMs:    staleMs,
			P95StalenessMs: rw.Quantile(0.95),
			LagEvents:      sl.EventsBehindMaster(),
			Admitted:       sl.Srv.Up() && !m.src.Proxy.Quarantined(sl),
		}
		s.Slaves = append(s.Slaves, ss)
		if ss.Admitted {
			s.AdmittedCount++
			utilSum += ss.Util
			if ss.StalenessMs > s.WorstAdmittedStalenessMs {
				s.WorstAdmittedStalenessMs = ss.StalenessMs
			}
			if ss.P95StalenessMs > s.WorstAdmittedP95Ms {
				s.WorstAdmittedP95Ms = ss.P95StalenessMs
			}
		}
	}
	if s.AdmittedCount > 0 {
		s.MeanAdmittedUtil = utilSum / float64(s.AdmittedCount)
	}
	m.prune(slaves)
	return s
}

// prune drops window state for replicas no longer attached, so state does
// not accumulate across scale-out/scale-in cycles. (Map iteration order is
// irrelevant here: it only deletes.)
func (m *Monitor) prune(attached []*repl.Slave) {
	if len(m.stale) == len(attached) {
		return
	}
	keep := make(map[*repl.Slave]bool, len(attached))
	for _, sl := range attached {
		keep[sl] = true
	}
	for sl := range m.stale {
		if !keep[sl] {
			delete(m.stale, sl)
			delete(m.busy, sl.Srv.Inst)
		}
	}
}
