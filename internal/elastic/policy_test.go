package elastic

import "testing"

func TestReactiveUtilization(t *testing.T) {
	p := ReactiveUtilization{} // defaults: 0.75 / 0.30
	cases := []struct {
		name string
		s    Sample
		want Action
	}{
		{"no slaves", Sample{}, Hold},
		{"overloaded", Sample{AdmittedCount: 2, MeanAdmittedUtil: 0.85}, ScaleOut},
		{"at high water", Sample{AdmittedCount: 2, MeanAdmittedUtil: 0.75}, ScaleOut},
		{"comfortable", Sample{AdmittedCount: 2, MeanAdmittedUtil: 0.55}, Hold},
		{"hysteresis band", Sample{AdmittedCount: 2, MeanAdmittedUtil: 0.40}, Hold},
		{"idle", Sample{AdmittedCount: 2, MeanAdmittedUtil: 0.20}, ScaleIn},
	}
	for _, c := range cases {
		if got, _ := p.Decide(c.s); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStalenessSLO(t *testing.T) {
	p := StalenessSLO{TargetP95Ms: 500} // defaults: frac 0.2, guard 0.60
	cases := []struct {
		name string
		s    Sample
		want Action
	}{
		{"no slaves", Sample{}, Hold},
		{"violating", Sample{AdmittedCount: 1, WorstAdmittedP95Ms: 900}, ScaleOut},
		{"inside slo", Sample{AdmittedCount: 2, WorstAdmittedP95Ms: 300, MeanAdmittedUtil: 0.2}, Hold},
		{"deep headroom, low cpu", Sample{AdmittedCount: 3, WorstAdmittedP95Ms: 20, MeanAdmittedUtil: 0.3}, ScaleIn},
		{"deep headroom, cpu guard trips", Sample{AdmittedCount: 3, WorstAdmittedP95Ms: 20, MeanAdmittedUtil: 0.5}, Hold},
		{"deep headroom, last slave", Sample{AdmittedCount: 1, WorstAdmittedP95Ms: 20, MeanAdmittedUtil: 0.1}, Hold},
	}
	for _, c := range cases {
		if got, reason := p.Decide(c.s); got != c.want {
			t.Errorf("%s: got %v (%s), want %v", c.name, got, reason, c.want)
		}
	}
}

func TestActionString(t *testing.T) {
	if Hold.String() != "hold" || ScaleOut.String() != "scale-out" || ScaleIn.String() != "scale-in" {
		t.Error("Action.String mismatch")
	}
}
