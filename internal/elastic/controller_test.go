package elastic

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func preloadApp(srv *server.DBServer) error {
	sess := srv.Session("")
	for _, sql := range []string{
		"CREATE DATABASE app",
		"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
		"INSERT INTO app.t (id, v) VALUES (1, 'seed')",
	} {
		if _, err := srv.ExecFree(sess, sql); err != nil {
			return err
		}
	}
	return nil
}

// newTier builds a small master+N-slave tier with a core handle.
func newTier(t *testing.T, seed int64, nSlaves int) (*sim.Env, *cluster.Cluster, *core.DB) {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	specs := make([]cluster.NodeSpec, nSlaves)
	for i := range specs {
		specs[i] = cluster.NodeSpec{Place: place}
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Cost:          server.DefaultCostModel(),
		Master:        cluster.NodeSpec{Place: place},
		Slaves:        specs,
		Preload:       preloadApp,
		ProvisionTime: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, clu, core.Open(clu, core.WithDatabase("app"), core.WithClientPlace(place))
}

func hasDecision(ds []Decision, action string) bool {
	for _, d := range ds {
		if d.Action == action {
			return true
		}
	}
	return false
}

// alwaysOut is a test policy that demands growth every tick; the
// controller's own guards (cooldown, warm-up, MaxSlaves, master-bound) are
// what is under test.
type alwaysOut struct{}

func (alwaysOut) Name() string                   { return "always-out" }
func (alwaysOut) Decide(Sample) (Action, string) { return ScaleOut, "test" }

// TestWarmupGateNoReadsUntilCaughtUp is the acceptance test for the warm-up
// gate: a slave the controller adds mid-run must serve zero reads while it
// is quarantined and must only be admitted once its lag is at or below the
// warm-up threshold.
func TestWarmupGateNoReadsUntilCaughtUp(t *testing.T) {
	env, clu, db := newTier(t, 11, 1)
	first := clu.Slaves()[0]
	const end = 3 * time.Minute

	ctrl := Start(env, Config{
		Interval:           time.Second,
		Cooldown:           5 * time.Second,
		WarmupMaxLagEvents: 5,
		MaxSlaves:          2,
		Spec:               cluster.NodeSpec{Place: first.Srv.Inst.Place},
		Policy:             alwaysOut{},
	}, Sources{Cluster: clu, Proxy: db.Proxy()})

	// Write load keeps the binlog moving so the provisioned slave comes up
	// with a real backlog; read load gives the proxy reads to (mis)route.
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; p.Now() < end; i++ {
			if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'w')",
				sqlengine.NewInt(int64(1000+i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			p.Sleep(150 * time.Millisecond)
		}
	})
	for r := 0; r < 3; r++ {
		env.Go("reader", func(p *sim.Proc) {
			for p.Now() < end {
				if _, err := db.Query(p, "SELECT v FROM t WHERE id = 1"); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				p.Sleep(100 * time.Millisecond)
			}
		})
	}

	var added *repl.Slave
	sawLaggedQuarantine := false
	env.Go("watcher", func(p *sim.Proc) {
		for p.Now() < end {
			for _, sl := range clu.Slaves() {
				if sl != first && added == nil {
					added = sl
				}
			}
			if added != nil && db.Proxy().Quarantined(added) {
				if got := db.Proxy().ReadsServed(added); got != 0 {
					t.Errorf("quarantined slave %s served %d read(s)", added.Srv.Name, got)
					return
				}
				if added.EventsBehindMaster() > 5 {
					sawLaggedQuarantine = true
				}
			}
			p.Sleep(100 * time.Millisecond)
		}
	})

	env.RunUntil(sim.Time(end))
	ctrl.Stop()

	if added == nil {
		t.Fatal("controller never provisioned a second slave")
	}
	if !sawLaggedQuarantine {
		t.Error("provisioned slave was never observed both quarantined and above the lag threshold — warm-up window too short to be meaningful")
	}
	if db.Proxy().Quarantined(added) {
		t.Errorf("slave %s still quarantined at end of run (lag %d)", added.Srv.Name, added.EventsBehindMaster())
	}
	if got := db.Proxy().ReadsServed(added); got == 0 {
		t.Error("admitted slave served no reads after warm-up")
	}
	if !hasDecision(ctrl.Decisions(), "scale-out") || !hasDecision(ctrl.Decisions(), "admit") {
		t.Errorf("decision log missing scale-out/admit: %v", ctrl.Decisions())
	}
	for _, d := range ctrl.Decisions() {
		if d.Action == "admit" && !strings.Contains(d.Reason, "caught up") {
			t.Errorf("admit decision lacks catch-up reason: %v", d)
		}
	}
	env.Stop()
	env.Shutdown()
}

// TestMasterBoundPrecheck: a scale-out demanded while the master CPU is
// over the high water must be refused with a MasterBound verdict, and later
// demands must stay suppressed — no flapping against the ceiling.
func TestMasterBoundPrecheck(t *testing.T) {
	env, clu, db := newTier(t, 12, 1)
	c := Start(env, Config{}, Sources{Cluster: clu, Proxy: db.Proxy()}) // observe-only ticks

	env.Go("test", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute) // clear the cooldown guard
		c.tryScaleOut(p, Sample{MasterUtil: 0.95, AdmittedCount: 1, Throughput: 10}, "cpu high")
		c.tryScaleOut(p, Sample{MasterUtil: 0.95, AdmittedCount: 1, Throughput: 10}, "cpu high")
	})
	env.RunUntil(sim.Time(3 * time.Minute))

	bound, at, slaves := c.MasterBound()
	if !bound {
		t.Fatal("expected MasterBound verdict")
	}
	if slaves != 1 {
		t.Errorf("verdict at %d slaves, want 1", slaves)
	}
	if at != sim.Time(2*time.Minute) {
		t.Errorf("verdict at %v, want 2m", at)
	}
	if n := len(clu.Slaves()); n != 1 {
		t.Errorf("fleet grew to %d despite saturation", n)
	}
	count := 0
	for _, d := range c.Decisions() {
		if d.Action == "master-bound" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want exactly one master-bound decision, got %d", count)
	}
	if !strings.Contains(c.Verdict(), "master-bound") {
		t.Errorf("verdict %q", c.Verdict())
	}
	env.Stop()
	env.Shutdown()
}

// TestJudgeRollsBackIneffectiveScaleOut: when throughput fails to improve
// after an admission and the master has no CPU headroom, the controller
// declares the tier master-bound and removes the replica that bought
// nothing.
func TestJudgeRollsBackIneffectiveScaleOut(t *testing.T) {
	env, clu, db := newTier(t, 13, 2)
	c := Start(env, Config{}, Sources{Cluster: clu, Proxy: db.Proxy()})
	sl := clu.Slaves()[1]

	env.Go("test", func(p *sim.Proc) {
		p.Sleep(time.Second)
		c.judge = &judgeState{preTp: 10, at: p.Now(), slave: sl}
		c.judgeImprovement(p, Sample{Throughput: 10.1, MasterUtil: 0.95, AdmittedCount: 2})
	})
	env.RunUntil(sim.Time(2 * time.Minute)) // lets the drain process finish

	if bound, _, _ := c.MasterBound(); !bound {
		t.Fatal("expected MasterBound verdict")
	}
	if n := len(clu.Slaves()); n != 1 {
		t.Errorf("ineffective replica not rolled back: %d slaves attached", n)
	}
	if sl.Srv.Inst.Up() {
		t.Error("rolled-back replica's instance still running (still billing)")
	}
	if !hasDecision(c.Decisions(), "rollback") || !hasDecision(c.Decisions(), "drained") {
		t.Errorf("decision log missing rollback/drained: %v", c.Decisions())
	}
	env.Stop()
	env.Shutdown()
}

// TestJudgeKeepsEffectiveScaleOut: a clear throughput gain clears the judge
// without any verdict.
func TestJudgeKeepsEffectiveScaleOut(t *testing.T) {
	env, clu, db := newTier(t, 14, 2)
	c := Start(env, Config{}, Sources{Cluster: clu, Proxy: db.Proxy()})
	sl := clu.Slaves()[1]

	env.Go("test", func(p *sim.Proc) {
		p.Sleep(time.Second)
		c.judge = &judgeState{preTp: 10, at: p.Now(), slave: sl}
		c.judgeImprovement(p, Sample{Throughput: 14, MasterUtil: 0.95, AdmittedCount: 2})
	})
	env.RunUntil(sim.Time(time.Minute))

	if bound, _, _ := c.MasterBound(); bound {
		t.Error("unexpected MasterBound verdict after a 40% gain")
	}
	if n := len(clu.Slaves()); n != 2 {
		t.Errorf("effective replica removed: %d slaves", n)
	}
	env.Stop()
	env.Shutdown()
}

// TestScaleCellOnMasterBound: when a ScaleCell hook is wired, a master-bound
// verdict triggers exactly one cell-split attempt. Success lifts the verdict
// (the tier now has a second master); failure records cell-scale-failed and
// leaves the verdict standing so the operator sees the ceiling.
func TestScaleCellOnMasterBound(t *testing.T) {
	env, clu, db := newTier(t, 13, 1)
	calls := 0
	c := Start(env, Config{
		ScaleCell: func(p *sim.Proc) error {
			calls++
			p.Sleep(5 * time.Second) // splits take time; verdict lifts only after
			return nil
		},
	}, Sources{Cluster: clu, Proxy: db.Proxy()})

	env.Go("test", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute)
		c.tryScaleOut(p, Sample{MasterUtil: 0.95, AdmittedCount: 1, Throughput: 10}, "cpu high")
		// A second demand while the split is in flight must not start another.
		c.tryScaleOut(p, Sample{MasterUtil: 0.95, AdmittedCount: 1, Throughput: 10}, "cpu high")
	})
	env.RunUntil(sim.Time(3 * time.Minute))
	env.Stop()
	env.Shutdown()

	if calls != 1 {
		t.Fatalf("ScaleCell ran %d times, want 1 (in-flight guard)", calls)
	}
	if bound, _, _ := c.MasterBound(); bound {
		t.Error("master-bound verdict not cleared after a successful cell split")
	}
	if !hasDecision(c.Decisions(), "cell-added") {
		t.Error("no cell-added decision recorded")
	}
	if c.lastScale != sim.Time(2*time.Minute+5*time.Second) {
		t.Errorf("lastScale = %v, want 2m5s (cooldown restarts at split completion)", c.lastScale)
	}
	reg := obs.NewRegistry()
	c.PublishMetrics(reg)
	if got := reg.Counter("elastic.cell_added").Value(); got != 1 {
		t.Errorf("elastic.cell_added = %v, want 1", got)
	}
}

func TestScaleCellFailureKeepsVerdict(t *testing.T) {
	env, clu, db := newTier(t, 14, 1)
	c := Start(env, Config{
		ScaleCell: func(p *sim.Proc) error {
			p.Sleep(time.Second)
			return errors.New("source slaves cannot keep up")
		},
	}, Sources{Cluster: clu, Proxy: db.Proxy()})

	env.Go("test", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute)
		c.tryScaleOut(p, Sample{MasterUtil: 0.95, AdmittedCount: 1, Throughput: 10}, "cpu high")
	})
	env.RunUntil(sim.Time(3 * time.Minute))
	env.Stop()
	env.Shutdown()

	if bound, _, _ := c.MasterBound(); !bound {
		t.Error("a failed split must leave the master-bound verdict standing")
	}
	if !hasDecision(c.Decisions(), "cell-scale-failed") {
		t.Error("no cell-scale-failed decision recorded")
	}
	if hasDecision(c.Decisions(), "cell-added") {
		t.Error("cell-added recorded for a failed split")
	}
}
