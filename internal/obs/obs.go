// Package obs is the simulator's observability layer: per-query tracing on
// the virtual timeline and a central metrics registry the middleware
// publishes into.
//
// Tracing follows one statement's causal chain across every component it
// touches — client handle, pool checkout, proxy routing attempts, server
// execution, binlog group commit and ship batches, slave appliers — and
// links them into a single trace even across process boundaries (the write
// runs on a client process; shipping and applying run on replication
// threads). Cross-process links ride the binlog sequence number: the server
// registers each committed entry against the write's span, and the dump and
// SQL threads look the sequence up to join the trace.
//
// Everything is deterministic: span IDs come from a splitmix64 generator
// seeded once from the simulation environment's RNG, and timestamps are
// virtual time — so the same seed produces a byte-identical trace file.
//
// All tracer and span methods are nil-safe: a nil *Tracer (tracing off)
// produces nil spans, and every method on a nil span is a no-op, so
// instrumented code needs no "is tracing on" branches.
package obs

import (
	"strconv"
	"time"

	"cloudrepl/internal/sim"
)

// Stages is the canonical order of pipeline stages a fully-traced write
// crosses, from the client's call to the last slave apply. Stage names are
// the Chrome trace "cat" field and the summary tool's grouping key.
var Stages = []string{"client", "pool", "proxy", "server", "binlog", "apply"}

// Ref names a span inside its trace; the zero Ref means "no span" and
// starting a linked span from it opens a fresh trace.
type Ref struct {
	Trace uint64
	Span  uint64
}

// Attr is one span annotation. Attributes are an ordered slice, not a map,
// so export order is deterministic.
type Attr struct {
	Key, Value string
}

// Span is one timed operation. Start it with Tracer.StartSpan (nested under
// the process's innermost open span) or Tracer.StartLinked (parented on an
// explicit Ref across processes), and End it exactly once; a span that is
// never ended counts as an orphan and is excluded from the export.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Stage  string
	Name   string
	Proc   string
	ProcID uint64
	Start  sim.Time
	Dur    time.Duration

	tr    *Tracer
	attrs []Attr
	ended bool
}

// SetAttr annotates the span; nil-safe.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{key, value})
}

// SetAttrInt annotates the span with an integer; nil-safe.
func (sp *Span) SetAttrInt(key string, value int64) {
	if sp == nil {
		return
	}
	sp.SetAttr(key, strconv.FormatInt(value, 10))
}

// Ref returns the span's cross-process link handle (zero Ref for nil).
func (sp *Span) Ref() Ref {
	if sp == nil {
		return Ref{}
	}
	return Ref{Trace: sp.Trace, Span: sp.ID}
}

// End closes the span at the current virtual time and pops it from its
// process's open-span stack; nil-safe, and a second End is a no-op.
func (sp *Span) End(p *sim.Proc) {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	sp.Dur = time.Duration(p.Now() - sp.Start)
	sp.tr.pop(sp)
}

// Tracer records spans on one simulation environment. The simulation is
// cooperatively single-threaded, so the tracer keeps a per-process stack of
// open spans: StartSpan nests under the calling process's innermost open
// span with no context argument threaded through call signatures.
type Tracer struct {
	env    *sim.Env
	idgen  uint64 // splitmix64 state, seeded once from the env RNG
	spans  []*Span
	stacks map[uint64][]*Span // proc ID → open spans, innermost last
	seqRef map[uint64]Ref     // binlog seq → committing write's span
}

// NewTracer creates a tracer whose span IDs are seeded from env's RNG (one
// draw at construction; span creation itself never touches the env RNG, so
// tracing cannot perturb the simulation's random stream).
func NewTracer(env *sim.Env) *Tracer {
	return &Tracer{
		env:    env,
		idgen:  env.Rand().Uint64() | 1, // never zero
		stacks: make(map[uint64][]*Span),
		seqRef: make(map[uint64]Ref),
	}
}

// nextID steps the splitmix64 generator. IDs are unique with overwhelming
// probability and, for one seed, identical run to run.
func (tr *Tracer) nextID() uint64 {
	tr.idgen += 0x9e3779b97f4a7c15
	z := tr.idgen
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// StartSpan opens a span on p's stack: a child of the process's innermost
// open span, or the root of a new trace when the stack is empty. Returns
// nil (safe to use) when the tracer is nil.
func (tr *Tracer) StartSpan(p *sim.Proc, stage, name string) *Span {
	if tr == nil {
		return nil
	}
	var parent, trace uint64
	if stack := tr.stacks[p.ID()]; len(stack) > 0 {
		top := stack[len(stack)-1]
		parent, trace = top.ID, top.Trace
	}
	return tr.start(p, stage, name, trace, parent)
}

// StartLinked opens a span parented on an explicit cross-process Ref — the
// dump thread links a ship batch to the write that produced its first
// entry, the applier links each apply to the originating write. A zero Ref
// starts a fresh trace (e.g. entries committed before tracing began).
func (tr *Tracer) StartLinked(p *sim.Proc, stage, name string, parent Ref) *Span {
	if tr == nil {
		return nil
	}
	return tr.start(p, stage, name, parent.Trace, parent.Span)
}

func (tr *Tracer) start(p *sim.Proc, stage, name string, trace, parent uint64) *Span {
	if trace == 0 {
		trace = tr.nextID()
	}
	sp := &Span{
		Trace:  trace,
		ID:     tr.nextID(),
		Parent: parent,
		Stage:  stage,
		Name:   name,
		Proc:   p.Name(),
		ProcID: p.ID(),
		Start:  p.Now(),
		tr:     tr,
	}
	tr.spans = append(tr.spans, sp)
	tr.stacks[p.ID()] = append(tr.stacks[p.ID()], sp)
	return sp
}

// pop removes an ended span from its process's stack. Spans normally end
// innermost-first; an out-of-order End removes the span from wherever it
// sits so the stack cannot wedge.
func (tr *Tracer) pop(sp *Span) {
	stack := tr.stacks[sp.ProcID]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == sp {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(tr.stacks, sp.ProcID)
	} else {
		tr.stacks[sp.ProcID] = stack
	}
}

// LinkSeq registers sp as the span that committed binlog sequence seq; the
// replication threads recover it with SeqRef. Nil-safe on both arguments.
func (tr *Tracer) LinkSeq(seq uint64, sp *Span) {
	if tr == nil || sp == nil {
		return
	}
	tr.seqRef[seq] = sp.Ref()
}

// SeqRef returns the span that committed binlog sequence seq (zero Ref when
// unknown, e.g. preload writes). Nil-safe.
func (tr *Tracer) SeqRef(seq uint64) Ref {
	if tr == nil {
		return Ref{}
	}
	return tr.seqRef[seq]
}

// Spans returns every recorded span in creation order (ended or not).
func (tr *Tracer) Spans() []*Span {
	if tr == nil {
		return nil
	}
	return tr.spans
}

// Orphans counts spans that were started but never ended — dropped End
// handles or operations cut off by the end of the run. Orphans are excluded
// from the export.
func (tr *Tracer) Orphans() int {
	if tr == nil {
		return 0
	}
	n := 0
	for _, sp := range tr.spans {
		if !sp.ended {
			n++
		}
	}
	return n
}
