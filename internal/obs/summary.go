package obs

import (
	"fmt"
	"sort"
	"strings"

	"cloudrepl/internal/metrics"
)

// StageStat is the per-stage latency breakdown of a trace file.
type StageStat struct {
	Stage   string
	Count   int
	MeanMs  float64
	P95Ms   float64
	MaxMs   float64
	TotalMs float64
}

// StageStats aggregates spans by pipeline stage, in canonical Stages order
// (unknown stages follow, sorted by name).
func StageStats(spans []ParsedSpan) []StageStat {
	byStage := map[string][]float64{}
	for _, sp := range spans {
		byStage[sp.Stage] = append(byStage[sp.Stage], sp.DurMs())
	}
	known := map[string]bool{}
	var order []string
	for _, st := range Stages {
		known[st] = true
		if len(byStage[st]) > 0 {
			order = append(order, st)
		}
	}
	var extra []string
	for st := range byStage {
		if !known[st] {
			extra = append(extra, st)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)

	var out []StageStat
	for _, st := range order {
		ds := byStage[st]
		sum := metrics.Summarize(ds)
		var total float64
		for _, d := range ds {
			total += d
		}
		out = append(out, StageStat{
			Stage: st, Count: len(ds),
			MeanMs: sum.Mean, P95Ms: sum.P95, MaxMs: sum.Max, TotalMs: total,
		})
	}
	return out
}

// TopSpans returns the n longest spans, ties broken by start time then span
// ID so the order is deterministic.
func TopSpans(spans []ParsedSpan, n int) []ParsedSpan {
	sorted := append([]ParsedSpan(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].DurUs != sorted[j].DurUs {
			return sorted[i].DurUs > sorted[j].DurUs
		}
		if sorted[i].TSUs != sorted[j].TSUs {
			return sorted[i].TSUs < sorted[j].TSUs
		}
		return sorted[i].ID < sorted[j].ID
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// FullTrace finds a trace whose spans cover every pipeline stage — one
// write's complete causal chain from the client call to a slave apply. The
// earliest-starting such trace wins (ties by trace ID), so the choice is
// deterministic. ok is false when no trace covers all stages.
func FullTrace(spans []ParsedSpan) (trace uint64, ok bool) {
	stages := map[uint64]map[string]bool{}
	first := map[uint64]float64{}
	for _, sp := range spans {
		set := stages[sp.Trace]
		if set == nil {
			set = map[string]bool{}
			stages[sp.Trace] = set
			first[sp.Trace] = sp.TSUs
		}
		set[sp.Stage] = true
		if sp.TSUs < first[sp.Trace] {
			first[sp.Trace] = sp.TSUs
		}
	}
	var ids []uint64
	for tr := range stages {
		ids = append(ids, tr)
	}
	sort.Slice(ids, func(i, j int) bool {
		if first[ids[i]] != first[ids[j]] {
			return first[ids[i]] < first[ids[j]]
		}
		return ids[i] < ids[j]
	})
	for _, tr := range ids {
		full := true
		for _, st := range Stages {
			if !stages[tr][st] {
				full = false
				break
			}
		}
		if full {
			return tr, true
		}
	}
	return 0, false
}

// CriticalPath returns a chain of spans, root first, descending at each
// level to the latest-ending child — for a write, the path from the client
// call through the server commit and binlog ship to the slave apply that
// gates staleness. Ties break toward the smaller span ID, so the path is
// deterministic.
func CriticalPath(spans []ParsedSpan, trace uint64) []ParsedSpan {
	children := map[uint64][]ParsedSpan{}
	var root ParsedSpan
	found := false
	n := 0
	for _, sp := range spans {
		if sp.Trace != trace {
			continue
		}
		n++
		children[sp.Parent] = append(children[sp.Parent], sp)
		if sp.Parent != 0 {
			continue
		}
		if !found || sp.TSUs < root.TSUs ||
			(sp.TSUs == root.TSUs && sp.ID < root.ID) {
			root = sp
			found = true
		}
	}
	if !found {
		return nil
	}
	path := []ParsedSpan{root}
	for cur := root; len(path) <= n; {
		kids := children[cur.ID]
		if len(kids) == 0 {
			break
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.EndUs() > next.EndUs() ||
				(k.EndUs() == next.EndUs() && k.ID < next.ID) {
				next = k
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Summarize renders the human-readable report the cloudrepl-trace command
// prints: per-stage latency breakdown, the n longest spans, and the
// critical path of one complete write trace.
func Summarize(spans []ParsedSpan, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d spans\n\n", len(spans))

	b.WriteString("per-stage latency breakdown\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %12s %14s\n",
		"stage", "spans", "mean (ms)", "p95 (ms)", "max (ms)", "total (ms)")
	for _, st := range StageStats(spans) {
		fmt.Fprintf(&b, "%-10s %8d %12.3f %12.3f %12.3f %14.1f\n",
			st.Stage, st.Count, st.MeanMs, st.P95Ms, st.MaxMs, st.TotalMs)
	}

	fmt.Fprintf(&b, "\ntop %d spans by duration\n", topN)
	fmt.Fprintf(&b, "%-10s %-14s %12s %14s  %s\n", "stage", "span", "dur (ms)", "start (ms)", "attrs")
	for _, sp := range TopSpans(spans, topN) {
		fmt.Fprintf(&b, "%-10s %-14s %12.3f %14.1f  %s\n",
			sp.Stage, sp.Name, sp.DurMs(), sp.TSUs/1000, attrString(sp))
	}

	if trace, ok := FullTrace(spans); ok {
		fmt.Fprintf(&b, "\ncritical path of one complete write (trace %s)\n", hexID(trace))
		path := CriticalPath(spans, trace)
		for i, sp := range path {
			fmt.Fprintf(&b, "%s%-10s %-14s start=%10.1f ms dur=%8.3f ms  %s\n",
				strings.Repeat("  ", i), sp.Stage, sp.Name, sp.TSUs/1000, sp.DurMs(), attrString(sp))
		}
	} else {
		b.WriteString("\nno trace covers every pipeline stage (client→pool→proxy→server→binlog→apply)\n")
	}
	return b.String()
}

// attrString renders a span's non-identity attributes, keys sorted.
func attrString(sp ParsedSpan) string {
	skip := map[string]bool{"trace": true, "span": true, "parent": true}
	var keys []string
	for k := range sp.Attrs {
		if !skip[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+sp.Attrs[k])
	}
	return strings.Join(parts, " ")
}
