package obs

import (
	"testing"

	"cloudrepl/internal/sim"
)

// TestDisabledObsZeroAlloc pins the "observability off" contract: a nil
// Tracer and a nil Registry are the disabled state, and every operation on
// them (and on the nil instruments they hand out) must be allocation-free —
// the hot path pays nothing when tracing/metrics are not requested.
func TestDisabledObsZeroAlloc(t *testing.T) {
	env := sim.NewEnv(1)
	var tr *Tracer
	var reg *Registry
	done := make(chan struct{})
	env.Go("probe", func(p *sim.Proc) {
		defer close(done)

		if a := testing.AllocsPerRun(100, func() {
			sp := tr.StartSpan(p, "stage", "name")
			sp.End(p)
		}); a > 0 {
			t.Errorf("nil tracer StartSpan/End allocates %.1f objects; want 0", a)
		}
		if a := testing.AllocsPerRun(100, func() {
			sp := tr.StartLinked(p, "stage", "name", Ref{})
			tr.LinkSeq(1, sp)
			sp.End(p)
		}); a > 0 {
			t.Errorf("nil tracer StartLinked/LinkSeq allocates %.1f objects; want 0", a)
		}

		c := reg.Counter("c")
		g := reg.Gauge("g")
		h := reg.Histogram("h")
		if a := testing.AllocsPerRun(100, func() {
			c.Inc()
			c.Add(2)
			g.Set(3)
			h.Record(4500)
		}); a > 0 {
			t.Errorf("nil registry instruments allocate %.1f objects; want 0", a)
		}
		if a := testing.AllocsPerRun(100, func() {
			_ = reg.Counter("again")
			_ = reg.Gauge("again")
			_ = reg.Histogram("again")
		}); a > 0 {
			t.Errorf("nil registry instrument lookup allocates %.1f objects; want 0", a)
		}
	})
	env.Run()
	<-done
}
