package obs

import (
	"math/rand"
	"sort"

	"cloudrepl/internal/metrics"
)

// Counter is a monotone count. Publishers that snapshot an existing total
// at the end of a run use Set; live instrumentation uses Add/Inc. A nil
// *Counter (from a disabled registry) no-ops on every method, so call
// sites need no guards and stay allocation-free.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d.
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v += d
	}
}

// Set replaces the count — snapshot-style publishing of a counter that is
// maintained elsewhere (idempotent when publishing runs more than once).
func (c *Counter) Set(v float64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. A nil *Gauge no-ops, like a nil
// *Counter.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry is the central named-metric store the middleware publishes into:
// counters, gauges and (reservoir-sampled) duration histograms, snapshotted
// into the bench's -json output. Metric names are dotted lowercase,
// "<component>.<metric>" — e.g. "proxy.retries", "pool.waits",
// "client.exec". The zero Registry is not usable; call NewRegistry. A nil
// *Registry is "metrics off": every lookup returns a nil instrument whose
// methods no-op, so instrumented code runs unguarded and unallocating.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram
	rng      *rand.Rand
}

// NewRegistry creates an empty registry. It draws no randomness at
// construction; histogram reservoirs use the generator injected with
// SetRand (core.Open threads the simulation env's RNG through).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*metrics.Histogram),
	}
}

// SetRand injects the RNG new histograms sample their reservoirs with,
// keeping eviction choices on the env-threaded random stream. Histograms
// created before the call keep their previous source.
func (r *Registry) SetRand(rng *rand.Rand) {
	if r != nil {
		r.rng = rng
	}
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first use
// with the registry's reservoir RNG (nil on a nil registry).
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &metrics.Histogram{}
		h.SetRand(r.rng)
		r.hists[name] = h
	}
	return h
}

// MergeInto publishes every metric of r into dst under prefix, as gauges
// holding the flattened Snapshot values (histograms arrive pre-expanded to
// .count/.mean_ms/.p95_ms/.max_ms). A sharded deployment keeps one private
// registry per cell and merges them into the top-level registry as
// "shard.<cell>.<component>.<metric>", so per-cell metrics never collide.
// Iteration is over sorted names, keeping dst's creation order (and any
// RNG draws downstream) deterministic. No-op when r or dst is nil.
func (r *Registry) MergeInto(dst *Registry, prefix string) {
	if r == nil || dst == nil {
		return
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst.Gauge(prefix + name).Set(snap[name])
	}
}

// Snapshot flattens every metric into a name→value map: counters and
// gauges verbatim, histograms expanded to <name>.count, <name>.mean_ms,
// <name>.p95_ms and <name>.max_ms. The map marshals with sorted keys, so a
// snapshot in JSON output is deterministic.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for name, c := range r.counters {
		out[name] = c.v
	}
	for name, g := range r.gauges {
		out[name] = g.v
	}
	var hnames []string
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		s := r.hists[name].Summary()
		out[name+".count"] = float64(r.hists[name].Total())
		out[name+".mean_ms"] = s.Mean
		out[name+".p95_ms"] = s.P95
		out[name+".max_ms"] = s.Max
	}
	return out
}
