package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// TraceEvent is one Chrome trace-event (the chrome://tracing / Perfetto
// JSON format). Spans export as complete events (ph "X") with microsecond
// timestamps on the virtual timeline; process names export as metadata
// events (ph "M").
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceFile is the top-level Chrome trace JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// OrphanSpans counts spans started but never ended (ignored by trace
	// viewers; the summary tool reports it).
	OrphanSpans int `json:"orphanSpans"`
}

// ExportJSON encodes every ended span as Chrome trace-event JSON. Spans are
// emitted in creation order with IDs rendered as fixed-width hex, so one
// seed yields a byte-identical file.
func (tr *Tracer) ExportJSON() ([]byte, error) {
	f := TraceFile{DisplayTimeUnit: "ms", OrphanSpans: tr.Orphans()}

	// One thread_name metadata event per process, in first-seen order.
	seen := map[uint64]bool{}
	for _, sp := range tr.spans {
		if seen[sp.ProcID] {
			continue
		}
		seen[sp.ProcID] = true
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: sp.ProcID,
			Args: map[string]string{"name": sp.Proc},
		})
	}

	for _, sp := range tr.spans {
		if !sp.ended {
			continue
		}
		args := map[string]string{
			"trace": hexID(sp.Trace),
			"span":  hexID(sp.ID),
		}
		if sp.Parent != 0 {
			args["parent"] = hexID(sp.Parent)
		}
		for _, a := range sp.attrs {
			args[a.Key] = a.Value
		}
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: sp.Name,
			Cat:  sp.Stage,
			Ph:   "X",
			TS:   micros(time.Duration(sp.Start)),
			Dur:  micros(sp.Dur),
			PID:  1,
			TID:  sp.ProcID,
			Args: args,
		})
	}
	return json.MarshalIndent(f, "", " ")
}

// ParsedSpan is one span recovered from an exported trace file — what the
// cloudrepl-trace summary tool works on.
type ParsedSpan struct {
	Name   string
	Stage  string
	TSUs   float64 // start, µs of virtual time
	DurUs  float64
	TID    uint64
	Trace  uint64
	ID     uint64
	Parent uint64
	Attrs  map[string]string
}

// EndUs is the span's end timestamp in µs.
func (s ParsedSpan) EndUs() float64 { return s.TSUs + s.DurUs }

// DurMs is the span's duration in milliseconds.
func (s ParsedSpan) DurMs() float64 { return s.DurUs / 1000 }

// ParseTrace decodes a Chrome trace file written by ExportJSON back into
// spans (metadata events are skipped).
func ParseTrace(data []byte) ([]ParsedSpan, error) {
	var f TraceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	var out []ParsedSpan
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		sp := ParsedSpan{
			Name: ev.Name, Stage: ev.Cat,
			TSUs: ev.TS, DurUs: ev.Dur, TID: ev.TID,
			Attrs: ev.Args,
		}
		var err error
		if sp.Trace, err = parseHexID(ev.Args["trace"]); err != nil {
			return nil, fmt.Errorf("obs: span %q: %w", ev.Name, err)
		}
		if sp.ID, err = parseHexID(ev.Args["span"]); err != nil {
			return nil, fmt.Errorf("obs: span %q: %w", ev.Name, err)
		}
		if p := ev.Args["parent"]; p != "" {
			if sp.Parent, err = parseHexID(p); err != nil {
				return nil, fmt.Errorf("obs: span %q: %w", ev.Name, err)
			}
		}
		out = append(out, sp)
	}
	return out, nil
}

func hexID(v uint64) string { return fmt.Sprintf("0x%016x", v) }

func parseHexID(s string) (uint64, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "0x%x", &v); err != nil {
		return 0, fmt.Errorf("bad span id %q", s)
	}
	return v, nil
}

// micros renders a duration as trace-event microseconds.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
