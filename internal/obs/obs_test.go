package obs

import (
	"bytes"
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

// runTraced executes fn on a fresh env/tracer pair and returns the tracer
// after the simulation drains.
func runTraced(seed int64, fn func(p *sim.Proc, tr *Tracer)) *Tracer {
	env := sim.NewEnv(seed)
	tr := NewTracer(env)
	env.Go("test", func(p *sim.Proc) { fn(p, tr) })
	env.Run()
	return tr
}

func TestSpanNestingFollowsProcStack(t *testing.T) {
	tr := runTraced(1, func(p *sim.Proc, tr *Tracer) {
		root := tr.StartSpan(p, "client", "exec")
		p.Sleep(time.Millisecond)
		child := tr.StartSpan(p, "proxy", "route")
		grand := tr.StartSpan(p, "server", "exec")
		if grand.Parent != child.ID || child.Parent != root.ID {
			t.Errorf("parent chain broken: root=%d child.Parent=%d grand.Parent=%d",
				root.ID, child.Parent, grand.Parent)
		}
		if child.Trace != root.Trace || grand.Trace != root.Trace {
			t.Error("children did not inherit the root's trace")
		}
		if root.Parent != 0 {
			t.Errorf("root has parent %d", root.Parent)
		}
		grand.End(p)
		child.End(p)
		root.End(p)

		// With the stack drained, the next span roots a new trace.
		next := tr.StartSpan(p, "client", "exec")
		if next.Trace == root.Trace || next.Parent != 0 {
			t.Errorf("post-drain span did not root a new trace: trace=%d parent=%d",
				next.Trace, next.Parent)
		}
		next.End(p)
	})
	if n := tr.Orphans(); n != 0 {
		t.Fatalf("orphans = %d, want 0", n)
	}
}

func TestOutOfOrderEndDoesNotWedgeStack(t *testing.T) {
	runTraced(2, func(p *sim.Proc, tr *Tracer) {
		outer := tr.StartSpan(p, "client", "exec")
		inner := tr.StartSpan(p, "pool", "borrow")
		outer.End(p) // ends before its child
		inner.End(p)
		inner.End(p) // double End is a no-op
		after := tr.StartSpan(p, "client", "exec")
		if after.Parent != 0 {
			t.Errorf("stack wedged: new root has parent %d", after.Parent)
		}
		after.End(p)
	})
}

func TestDeterministicIDsUnderFixedSeed(t *testing.T) {
	scenario := func(p *sim.Proc, tr *Tracer) {
		root := tr.StartSpan(p, "client", "exec")
		p.Sleep(3 * time.Millisecond)
		child := tr.StartSpan(p, "server", "exec")
		child.SetAttrInt("seq", 7)
		child.End(p)
		root.End(p)
	}
	a := runTraced(42, scenario)
	b := runTraced(42, scenario)
	if len(a.Spans()) != len(b.Spans()) {
		t.Fatalf("span counts differ: %d vs %d", len(a.Spans()), len(b.Spans()))
	}
	for i, sp := range a.Spans() {
		other := b.Spans()[i]
		if sp.ID != other.ID || sp.Trace != other.Trace || sp.Parent != other.Parent {
			t.Fatalf("span %d IDs differ across same-seed runs: %+v vs %+v", i, sp, other)
		}
	}
	ja, err := a.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("same-seed exports are not byte-identical")
	}

	c := runTraced(43, scenario)
	if c.Spans()[0].ID == a.Spans()[0].ID {
		t.Fatal("different seeds produced the same span ID stream")
	}
}

func TestOrphanDetectionAndExportExclusion(t *testing.T) {
	tr := runTraced(3, func(p *sim.Proc, tr *Tracer) {
		done := tr.StartSpan(p, "client", "exec")
		done.End(p)
		leaked := tr.StartSpan(p, "pool", "borrow")
		_ = leaked // never ended
	})
	if n := tr.Orphans(); n != 1 {
		t.Fatalf("orphans = %d, want 1", n)
	}
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("export contains %d spans, want 1 (orphan excluded)", len(spans))
	}
	if spans[0].Stage != "client" {
		t.Fatalf("wrong span exported: %+v", spans[0])
	}
}

func TestSeqLinksJoinTracesAcrossProcs(t *testing.T) {
	env := sim.NewEnv(4)
	tr := NewTracer(env)
	var writeTrace uint64
	env.Go("writer", func(p *sim.Proc) {
		sp := tr.StartSpan(p, "server", "exec")
		writeTrace = sp.Trace
		tr.LinkSeq(17, sp)
		sp.End(p)
	})
	env.Go("applier", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // run after the writer
		asp := tr.StartLinked(p, "apply", "apply", tr.SeqRef(17))
		if asp.Trace != writeTrace {
			t.Errorf("apply span trace %d, want the write's trace %d", asp.Trace, writeTrace)
		}
		asp.End(p)

		// Unknown sequence → zero Ref → fresh trace.
		fresh := tr.StartLinked(p, "apply", "apply", tr.SeqRef(999))
		if fresh.Trace == writeTrace || fresh.Parent != 0 {
			t.Errorf("unknown seq did not root a fresh trace: %+v", fresh)
		}
		fresh.End(p)
	})
	env.Run()
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	env := sim.NewEnv(5)
	env.Go("test", func(p *sim.Proc) {
		sp := tr.StartSpan(p, "client", "exec")
		sp.SetAttr("k", "v")
		sp.SetAttrInt("n", 1)
		sp.End(p)
		tr.LinkSeq(1, sp)
		lsp := tr.StartLinked(p, "apply", "apply", tr.SeqRef(1))
		lsp.End(p)
	})
	env.Run()
	if tr.Spans() != nil || tr.Orphans() != 0 {
		t.Fatal("nil tracer reported spans")
	}
}

func TestExportParseRoundtrip(t *testing.T) {
	tr := runTraced(6, func(p *sim.Proc, tr *Tracer) {
		root := tr.StartSpan(p, "client", "exec")
		p.Sleep(2 * time.Millisecond)
		child := tr.StartSpan(p, "proxy", "route")
		child.SetAttr("kind", "write")
		child.SetAttrInt("attempts", 2)
		p.Sleep(time.Millisecond)
		child.End(p)
		root.End(p)
	})
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("parsed %d spans, want 2", len(spans))
	}
	var root, child ParsedSpan
	for _, sp := range spans {
		if sp.Stage == "client" {
			root = sp
		} else {
			child = sp
		}
	}
	if child.Parent != root.ID || child.Trace != root.Trace {
		t.Fatalf("parsed linkage broken: root=%+v child=%+v", root, child)
	}
	if child.Attrs["kind"] != "write" || child.Attrs["attempts"] != "2" {
		t.Fatalf("attrs lost in roundtrip: %v", child.Attrs)
	}
	if child.DurMs() != 1 {
		t.Fatalf("child duration %v ms, want 1", child.DurMs())
	}
	if root.EndUs() < child.EndUs() {
		t.Fatal("root ended before its child")
	}
}

func TestRegistrySnapshotFlattens(t *testing.T) {
	r := NewRegistry()
	r.Counter("proxy.retries").Inc()
	r.Counter("proxy.retries").Add(2)
	r.Gauge("pool.active").Set(5)
	h := r.Histogram("client.exec")
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)

	snap := r.Snapshot()
	if snap["proxy.retries"] != 3 {
		t.Errorf("counter = %v, want 3", snap["proxy.retries"])
	}
	if snap["pool.active"] != 5 {
		t.Errorf("gauge = %v, want 5", snap["pool.active"])
	}
	if snap["client.exec.count"] != 2 {
		t.Errorf("hist count = %v, want 2", snap["client.exec.count"])
	}
	if snap["client.exec.mean_ms"] != 3 {
		t.Errorf("hist mean = %v, want 3", snap["client.exec.mean_ms"])
	}
	if _, ok := snap["client.exec.p95_ms"]; !ok {
		t.Error("hist p95 missing from snapshot")
	}
	if _, ok := snap["client.exec.max_ms"]; !ok {
		t.Error("hist max missing from snapshot")
	}
	// Counter Set is idempotent snapshot-style publishing.
	r.Counter("chaos.crashes").Set(2)
	r.Counter("chaos.crashes").Set(2)
	if got := r.Snapshot()["chaos.crashes"]; got != 2 {
		t.Errorf("snapshot-style counter = %v, want 2", got)
	}
}

// synthetic spans for the summary helpers: one full-pipeline trace (id 1)
// and one partial trace (id 2) that starts earlier but lacks stages.
func summaryFixture() []ParsedSpan {
	mk := func(trace, id, parent uint64, stage string, ts, dur float64) ParsedSpan {
		return ParsedSpan{Name: stage, Stage: stage, Trace: trace, ID: id,
			Parent: parent, TSUs: ts, DurUs: dur}
	}
	return []ParsedSpan{
		mk(2, 20, 0, "client", 0, 50),
		mk(1, 10, 0, "client", 100, 1000),
		mk(1, 11, 10, "pool", 110, 20),
		mk(1, 12, 10, "proxy", 140, 800),
		mk(1, 13, 12, "server", 200, 600),
		mk(1, 14, 13, "binlog", 900, 300),
		mk(1, 15, 14, "apply", 1300, 400),
	}
}

func TestFullTraceAndCriticalPath(t *testing.T) {
	spans := summaryFixture()
	trace, ok := FullTrace(spans)
	if !ok || trace != 1 {
		t.Fatalf("FullTrace = %d, %v; want 1, true", trace, ok)
	}
	path := CriticalPath(spans, trace)
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	if path[0].ID != 10 {
		t.Fatalf("path does not start at the root: %+v", path[0])
	}
	last := path[len(path)-1]
	if last.Stage != "apply" {
		t.Fatalf("path does not end at the latest-ending span: %+v", last)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Parent != path[i-1].ID {
			t.Fatalf("path link %d broken: %+v -> %+v", i, path[i-1], path[i])
		}
	}
	if _, ok := FullTrace(spans[:1]); ok {
		t.Fatal("partial trace reported as full")
	}
}

func TestStageStatsCanonicalOrder(t *testing.T) {
	stats := StageStats(summaryFixture())
	if len(stats) != len(Stages) {
		t.Fatalf("got %d stages, want %d", len(stats), len(Stages))
	}
	for i, st := range stats {
		if st.Stage != Stages[i] {
			t.Fatalf("stage %d = %q, want canonical %q", i, st.Stage, Stages[i])
		}
	}
	if stats[0].Count != 2 { // two client spans
		t.Fatalf("client count = %d, want 2", stats[0].Count)
	}
}
