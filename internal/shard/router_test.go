package shard

import (
	"testing"

	"cloudrepl/internal/sqlengine"
)

func testKS() Keyspace {
	return Keyspace{
		Key:    map[string]string{"events": "id", "attendance": "event_id", "users": "id"},
		Global: map[string]bool{"tags": true},
	}
}

func TestAnalyzeRouting(t *testing.T) {
	ks := testKS()
	cases := []struct {
		sql   string
		kind  routeKind
		write bool
	}{
		{"SELECT * FROM events WHERE id = ?", routeSingle, false},
		{"SELECT * FROM events WHERE id = 7", routeSingle, false},
		{"SELECT * FROM events WHERE 3 = id", routeSingle, false},
		{"SELECT user_id FROM attendance WHERE event_id = ? AND user_id > 2", routeSingle, false},
		// Co-located join pinned by either side's key.
		{"SELECT e.id FROM events e JOIN attendance a ON a.event_id = e.id WHERE e.id = ?", routeSingle, false},
		{"SELECT e.id FROM events e JOIN attendance a ON a.event_id = e.id WHERE a.event_id = ?", routeSingle, false},
		// No key equality: scatter.
		{"SELECT id, title FROM events ORDER BY created DESC LIMIT 10", routeScatter, false},
		{"SELECT id FROM events WHERE creator_id = ?", routeScatter, false},
		{"SELECT id FROM events WHERE id > 5", routeScatter, false},
		// Global / table-less: any one cell.
		{"SELECT name FROM tags", routeAny, false},
		{"SELECT 1", routeAny, false},
		// Writes.
		{"INSERT INTO events (id, title) VALUES (?, ?)", routeSingle, true},
		{"UPDATE events SET title = ? WHERE id = ?", routeSingle, true},
		{"DELETE FROM attendance WHERE event_id = 9", routeSingle, true},
		{"UPDATE events SET title = ? WHERE created < ?", routeBroadcast, true},
		{"INSERT INTO tags (id, name) VALUES (?, ?)", routeBroadcast, true},
		{"CREATE TABLE x (id BIGINT PRIMARY KEY)", routeBroadcast, true},
	}
	for _, tc := range cases {
		ri := analyze(tc.sql, ks)
		if ri.err != nil {
			t.Errorf("%s: err %v", tc.sql, ri.err)
			continue
		}
		if ri.kind != tc.kind || ri.write != tc.write {
			t.Errorf("%s: kind=%d write=%v, want kind=%d write=%v", tc.sql, ri.kind, ri.write, tc.kind, tc.write)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ks := testKS()
	for _, sql := range []string{
		"INSERT INTO events (title) VALUES (?)",                                 // shard key omitted
		"SELECT creator_id FROM events GROUP BY creator_id HAVING COUNT(*) > 1", // HAVING on scatter
		"SELECT AVG(id) FROM events",                                            // AVG does not decompose
		"SELECT id FROM events LIMIT ?",                                         // parameterized LIMIT on scatter
	} {
		if ri := analyze(sql, ks); ri.err == nil {
			t.Errorf("%s: expected routing error", sql)
		}
	}
}

func TestResolveKeysMultiRowInsert(t *testing.T) {
	ks := testKS()
	ri := analyze("INSERT INTO events (id, title) VALUES (?, ?), (41, 'x')", ks)
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	keys, err := ri.resolveKeys([]sqlengine.Value{sqlengine.NewInt(40), sqlengine.NewString("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 40 || keys[1] != 41 {
		t.Fatalf("keys = %v", keys)
	}
	if _, err := ri.resolveKeys([]sqlengine.Value{sqlengine.NewString("oops")}); err == nil {
		t.Fatal("non-integer key argument not rejected")
	}
}

func rows(vals ...int64) [][]sqlengine.Value {
	out := make([][]sqlengine.Value, len(vals))
	for i, v := range vals {
		out[i] = []sqlengine.Value{sqlengine.NewInt(v)}
	}
	return out
}

// TestMergePlainOrderLimit: the per-cell statement pushes LIMIT+OFFSET down
// and the merge sorts, offsets and limits globally.
func TestMergePlainOrderLimit(t *testing.T) {
	ri := analyze("SELECT id FROM events ORDER BY id DESC LIMIT 3 OFFSET 1", testKS())
	if ri.err != nil || ri.kind != routeScatter {
		t.Fatalf("route: %+v", ri)
	}
	if ri.plan.limit != 3 || ri.plan.offset != 1 {
		t.Fatalf("plan limit/offset = %d/%d", ri.plan.limit, ri.plan.offset)
	}
	// Each cell must be asked for limit+offset rows.
	cellRI := analyze(ri.plan.cellSQL, testKS())
	if cellRI.err != nil {
		t.Fatalf("cellSQL %q does not re-analyze: %v", ri.plan.cellSQL, cellRI.err)
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"id"}, Rows: rows(5, 1, 9)},
		{Columns: []string{"id"}, Rows: rows(7, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 5, 3} // desc 9 7 5 3 1, offset 1, limit 3
	if len(merged.Rows) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(merged.Rows), len(want))
	}
	for i, w := range want {
		if merged.Rows[i][0].Int() != w {
			t.Fatalf("row %d = %d, want %d", i, merged.Rows[i][0].Int(), w)
		}
	}
}

// TestMergeHelperColumn: ordering by an unprojected column appends it to the
// per-cell projection and strips it after the sort.
func TestMergeHelperColumn(t *testing.T) {
	ri := analyze("SELECT title FROM events ORDER BY created DESC LIMIT 2", testKS())
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	if ri.plan.dropCols != 1 {
		t.Fatalf("dropCols = %d, want 1", ri.plan.dropCols)
	}
	mk := func(title string, created int64) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewString(title), sqlengine.NewInt(created)}
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"title", "created"}, Rows: [][]sqlengine.Value{mk("old", 1), mk("new", 9)}},
		{Columns: []string{"title", "created"}, Rows: [][]sqlengine.Value{mk("mid", 5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Columns) != 1 || merged.Columns[0] != "title" {
		t.Fatalf("columns = %v, want [title]", merged.Columns)
	}
	if len(merged.Rows) != 2 || merged.Rows[0][0].Str() != "new" || merged.Rows[1][0].Str() != "mid" {
		t.Fatalf("rows = %v", merged.Rows)
	}
}

// TestMergeSelectStarByName: SELECT * resolves order columns against the
// result header at merge time.
func TestMergeSelectStarByName(t *testing.T) {
	ri := analyze("SELECT * FROM events ORDER BY created", testKS())
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	mk := func(id, created int64) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(id), sqlengine.NewInt(created)}
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"id", "created"}, Rows: [][]sqlengine.Value{mk(1, 30)}},
		{Columns: []string{"id", "created"}, Rows: [][]sqlengine.Value{mk(2, 10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Rows[0][0].Int() != 2 || merged.Rows[1][0].Int() != 1 {
		t.Fatalf("rows = %v", merged.Rows)
	}
}

// TestMergeAggregates: COUNT/SUM add across cells, MIN/MAX compare, group
// rows fold by key, and ORDER BY/LIMIT re-apply after re-aggregation.
func TestMergeAggregates(t *testing.T) {
	ri := analyze("SELECT tag_id, COUNT(*) AS cnt FROM attendance GROUP BY tag_id ORDER BY cnt DESC LIMIT 2", testKS())
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	// Per-cell statements must not carry ORDER BY/LIMIT (partial counts
	// sort wrong) — check by re-parsing the rewrite.
	stmt, err := sqlengine.Parse(ri.plan.cellSQL)
	if err != nil {
		t.Fatalf("cellSQL %q: %v", ri.plan.cellSQL, err)
	}
	sel := stmt.(*sqlengine.SelectStmt)
	if sel.OrderBy != nil || sel.Limit != nil {
		t.Fatalf("cellSQL kept ORDER BY/LIMIT: %q", ri.plan.cellSQL)
	}
	mk := func(tag, n int64) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(tag), sqlengine.NewInt(n)}
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"tag_id", "cnt"}, Rows: [][]sqlengine.Value{mk(1, 4), mk(2, 1)}},
		{Columns: []string{"tag_id", "cnt"}, Rows: [][]sqlengine.Value{mk(2, 9), mk(3, 2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rows) != 2 {
		t.Fatalf("rows = %v", merged.Rows)
	}
	if merged.Rows[0][0].Int() != 2 || merged.Rows[0][1].Int() != 10 {
		t.Fatalf("top group = %v, want tag 2 cnt 10", merged.Rows[0])
	}
	if merged.Rows[1][0].Int() != 1 || merged.Rows[1][1].Int() != 4 {
		t.Fatalf("second group = %v, want tag 1 cnt 4", merged.Rows[1])
	}
}

func TestMergeMinMax(t *testing.T) {
	ri := analyze("SELECT MIN(id), MAX(id) FROM events", testKS())
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	mk := func(lo, hi int64) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(lo), sqlengine.NewInt(hi)}
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"MIN(id)", "MAX(id)"}, Rows: [][]sqlengine.Value{mk(4, 90)}},
		{Columns: []string{"MIN(id)", "MAX(id)"}, Rows: [][]sqlengine.Value{mk(2, 60)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Rows[0][0].Int() != 2 || merged.Rows[0][1].Int() != 90 {
		t.Fatalf("min/max = %v", merged.Rows[0])
	}
}

func TestMergeDistinct(t *testing.T) {
	ri := analyze("SELECT DISTINCT creator_id FROM events ORDER BY creator_id", testKS())
	if ri.err != nil {
		t.Fatal(ri.err)
	}
	merged, err := ri.plan.merge([]*sqlengine.ResultSet{
		{Columns: []string{"creator_id"}, Rows: rows(3, 1)},
		{Columns: []string{"creator_id"}, Rows: rows(1, 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rows) != 3 {
		t.Fatalf("distinct rows = %v", merged.Rows)
	}
	for i, w := range []int64{1, 2, 3} {
		if merged.Rows[i][0].Int() != w {
			t.Fatalf("row %d = %v", i, merged.Rows[i])
		}
	}
}
