package shard

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// kvPreload builds the partitioned preload for a tiny kv schema: one
// sharded table and one global lookup table.
func kvPreload(rows int) func(owns func(table string, key int64) bool) func(*server.DBServer) error {
	return func(owns func(table string, key int64) bool) func(*server.DBServer) error {
		return func(srv *server.DBServer) error {
			sess := srv.Session("")
			for _, sql := range []string{
				"CREATE DATABASE app",
				"USE app",
				"CREATE TABLE kv (id BIGINT PRIMARY KEY, v VARCHAR(20))",
				"CREATE TABLE g (id BIGINT PRIMARY KEY, name VARCHAR(20))",
			} {
				if _, err := srv.ExecFree(sess, sql); err != nil {
					return err
				}
			}
			for i := 1; i <= 3; i++ {
				if _, err := srv.ExecFree(sess, "INSERT INTO g (id, name) VALUES (?, ?)",
					sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("g%d", i))); err != nil {
					return err
				}
			}
			for i := 1; i <= rows; i++ {
				if !owns("kv", int64(i)) {
					continue
				}
				if _, err := srv.ExecFree(sess, "INSERT INTO kv (id, v) VALUES (?, 'seed')",
					sqlengine.NewInt(int64(i))); err != nil {
					return err
				}
			}
			return nil
		}
	}
}

func newShard(t *testing.T, seed int64, cells, slots, rows int) (*sim.Env, *cloud.Cloud, *Cluster) {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	sc, err := New(env, cl, Config{
		Cells: cells,
		Slots: slots,
		Keyspace: Keyspace{
			Key:    map[string]string{"kv": "id"},
			Global: map[string]bool{"g": true},
		},
		Database: "app",
		Cell: cluster.Config{
			Mode:   repl.Async,
			Cost:   server.DefaultCostModel(),
			Master: cluster.NodeSpec{Place: place},
			Slaves: []cluster.NodeSpec{{Place: place}},
		},
		PartitionedPreload: kvPreload(rows),
		ClientPlace:        place,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, cl, sc
}

// keyCensus flattens per-cell key multisets into total count per key.
func keyCensus(t *testing.T, sc *Cluster, table string) map[int64]int {
	t.Helper()
	sets, err := sc.Keys(table)
	if err != nil {
		t.Fatal(err)
	}
	total := make(map[int64]int)
	for _, set := range sets {
		for k, n := range set {
			total[k] += n
		}
	}
	return total
}

// assertExactlyOnce fails unless each of want keys appears exactly once
// across all cells, with no extras.
func assertExactlyOnce(t *testing.T, sc *Cluster, table string, want map[int64]bool) {
	t.Helper()
	got := keyCensus(t, sc, table)
	for k := range want {
		switch got[k] {
		case 1:
		case 0:
			t.Errorf("%s key %d lost", table, k)
		default:
			t.Errorf("%s key %d duplicated %d times", table, k, got[k])
		}
	}
	for k, n := range got {
		if !want[k] {
			t.Errorf("%s key %d unexpected (count %d)", table, k, n)
		}
	}
}

func TestPartitionedPreloadExactlyOnce(t *testing.T) {
	const rows = 200
	env, _, sc := newShard(t, 1, 4, 16, rows)
	env.RunUntil(time.Second)
	want := make(map[int64]bool, rows)
	for i := 1; i <= rows; i++ {
		want[int64(i)] = true
	}
	assertExactlyOnce(t, sc, "kv", want)
	// Every cell holds the full global table.
	for _, cell := range sc.Cells() {
		srv := cell.Clu.Master().Srv
		res, err := srv.ExecFree(srv.Session("app"), "SELECT COUNT(*) AS n FROM g")
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Set.Rows[0][0].Int(); n != 3 {
			t.Errorf("cell %d has %d global rows, want 3", cell.ID, n)
		}
	}
	// Instance names are per-cell namespaced.
	if sc.Cell(2).Clu.Master().Srv.Name != "cell2/master" {
		t.Errorf("master name = %q", sc.Cell(2).Clu.Master().Srv.Name)
	}
	env.Stop()
	env.Shutdown()
}

func TestRoutedExecEndToEnd(t *testing.T) {
	const rows = 60
	env, _, sc := newShard(t, 2, 3, 12, rows)
	failed := false
	env.Go("app", func(p *sim.Proc) {
		conn := sc.Connect("app")
		// Single-key reads hit every preloaded row wherever it lives.
		for i := 1; i <= rows; i++ {
			set, err := conn.Query(p, "SELECT v FROM kv WHERE id = ?", sqlengine.NewInt(int64(i)))
			if err != nil || len(set.Rows) != 1 {
				t.Errorf("id %d: err=%v rows=%v", i, err, set)
				failed = true
				return
			}
		}
		// Scatter read: globally ordered union of all cells.
		set, err := conn.Query(p, "SELECT id FROM kv ORDER BY id")
		if err != nil {
			t.Errorf("scatter: %v", err)
			failed = true
			return
		}
		if len(set.Rows) != rows {
			t.Errorf("scatter rows = %d, want %d", len(set.Rows), rows)
			failed = true
		}
		for i, r := range set.Rows {
			if r[0].Int() != int64(i+1) {
				t.Errorf("scatter row %d = %d, want %d", i, r[0].Int(), i+1)
				failed = true
				return
			}
		}
		// Scatter aggregate.
		set, err = conn.Query(p, "SELECT COUNT(*) AS n FROM kv")
		if err != nil || set.Rows[0][0].Int() != rows {
			t.Errorf("count: err=%v set=%v", err, set)
			failed = true
		}
		// Routed write, read-back through the router.
		if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'new')", sqlengine.NewInt(int64(rows+1))); err != nil {
			t.Errorf("insert: %v", err)
			failed = true
		}
		set, err = conn.Query(p, "SELECT v FROM kv WHERE id = ?", sqlengine.NewInt(int64(rows+1)))
		if err != nil || len(set.Rows) != 1 || set.Rows[0][0].Str() != "new" {
			t.Errorf("read-back: err=%v set=%v", err, set)
			failed = true
		}
		// Global-table read and write.
		if _, err := conn.Query(p, "SELECT name FROM g WHERE id = 1"); err != nil {
			t.Errorf("global read: %v", err)
			failed = true
		}
		if _, err := conn.Exec(p, "INSERT INTO g (id, name) VALUES (9, 'g9')"); err != nil {
			t.Errorf("global write: %v", err)
			failed = true
		}
	})
	env.RunUntil(5 * time.Minute)
	if failed {
		t.FailNow()
	}
	st := sc.Stats()
	if st.SingleKey == 0 || st.ScatterOps == 0 || st.AnyReads == 0 || st.Broadcasts == 0 {
		t.Fatalf("router stats missing a class: %+v", st)
	}
	if st.ScatterLegs < st.ScatterOps*3 {
		t.Fatalf("scatter legs %d < ops %d × 3 cells", st.ScatterLegs, st.ScatterOps)
	}
	if st.Errors != 0 {
		t.Fatalf("router errors: %d", st.Errors)
	}
	// The broadcast write landed on every cell.
	for _, cell := range sc.Cells() {
		srv := cell.Clu.Master().Srv
		res, err := srv.ExecFree(srv.Session("app"), "SELECT COUNT(*) AS n FROM g")
		if err != nil || res.Set.Rows[0][0].Int() != 4 {
			t.Fatalf("cell %d global rows: err=%v res=%v", cell.ID, err, res)
		}
	}
	env.Stop()
	env.Shutdown()
}

// TestSplitOnline runs a live split under continuous single-key writes and
// scatter reads, then checks that no row was lost or duplicated, ownership
// moved, and the write-unavailability window stayed small.
func TestSplitOnline(t *testing.T) {
	const rows = 150
	env, _, sc := newShard(t, 3, 1, 16, rows)
	nextID := int64(rows)
	written := map[int64]bool{}
	stop := false
	for w := 0; w < 4; w++ {
		env.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			conn := sc.Connect("app")
			for i := 0; !stop; i++ {
				nextID++
				id := nextID
				if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'live')", sqlengine.NewInt(id)); err != nil {
					t.Errorf("live insert %d: %v", id, err)
					return
				}
				written[id] = true
				// Scatter occasionally: the read load must leave the source
				// slaves apply headroom, or the cutover (correctly) refuses
				// to freeze writes behind slaves that cannot catch up.
				if i%4 == 0 {
					if _, err := conn.Query(p, "SELECT COUNT(*) AS n FROM kv"); err != nil {
						t.Errorf("live scatter: %v", err)
						return
					}
				}
				p.Sleep(100 * time.Millisecond)
			}
		})
	}
	var rep *SplitReport
	env.Go("splitter", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		r, err := sc.Split(p)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		rep = r
		p.Sleep(2 * time.Second)
		stop = true
	})
	env.RunUntil(10 * time.Minute)
	if t.Failed() {
		t.FailNow()
	}
	if rep == nil {
		t.Fatal("split never completed")
	}
	if rep.Aborted {
		t.Fatalf("split aborted: %s", rep.Err)
	}
	if sc.NumCells() != 2 || sc.Map().Version() != 2 {
		t.Fatalf("cells=%d version=%d after split", sc.NumCells(), sc.Map().Version())
	}
	if rep.MovedRows == 0 {
		t.Fatal("split moved no rows")
	}
	// The barrier (drain + final replay + source cleanup) must stay well
	// under both the copy duration and the clients' ErrWrongShard retry
	// budget (~2.3 s) — otherwise writers would surface errors above.
	if rep.Downtime <= 0 || rep.Downtime > 2*time.Second {
		t.Fatalf("downtime = %v, want (0, 2s]", rep.Downtime)
	}
	if rep.Downtime >= rep.CopyDuration {
		t.Fatalf("downtime %v not << copy %v", rep.Downtime, rep.CopyDuration)
	}
	// Both cells own slots and hold rows.
	loads := sc.Map().CellLoads(1)
	if loads[0] == 0 || loads[1] == 0 {
		t.Fatalf("slot loads after split: %v", loads)
	}
	want := make(map[int64]bool, rows+len(written))
	for i := 1; i <= rows; i++ {
		want[int64(i)] = true
	}
	for id := range written {
		want[id] = true
	}
	assertExactlyOnce(t, sc, "kv", want)
	st := sc.Stats()
	if st.Splits != 1 {
		t.Fatalf("splits = %d", st.Splits)
	}
	env.Stop()
	env.Shutdown()
}

// TestSplitChaosKillTarget kills the split target's master mid-copy. The
// split must abort, the fresh cell must leave the routing set, writes must
// keep flowing, and no row may be lost or duplicated.
func TestSplitChaosKillTarget(t *testing.T) {
	const rows = 400
	env, cl, sc := newShard(t, 4, 1, 16, rows)
	var splitAt sim.Time
	nextID := int64(rows)
	written := map[int64]bool{}
	stop := false
	env.Go("writer", func(p *sim.Proc) {
		conn := sc.Connect("app")
		for !stop {
			nextID++
			id := nextID
			if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'live')", sqlengine.NewInt(id)); err != nil {
				t.Errorf("live insert %d: %v", id, err)
				return
			}
			written[id] = true
			p.Sleep(10 * time.Millisecond)
		}
	})
	var rep *SplitReport
	env.Go("splitter", func(p *sim.Proc) {
		splitAt = p.Now()
		r, err := sc.Split(p)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		rep = r
		p.Sleep(2 * time.Second)
		stop = true
	})
	// Kill the freshly created target master while the copy is running.
	env.Go("killer", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		chaos.Start(env, cl, (&chaos.Schedule{}).Crash(time.Duration(p.Now())+time.Millisecond, "cell1/master"))
	})
	env.RunUntil(10 * time.Minute)
	if t.Failed() {
		t.FailNow()
	}
	if rep == nil {
		t.Fatal("split never returned")
	}
	if !rep.Aborted {
		t.Fatalf("split did not abort (moved %d rows in %v starting %v)", rep.MovedRows, rep.CopyDuration, splitAt)
	}
	if sc.NumCells() != 1 {
		t.Fatalf("cells = %d after aborted split, want 1 (fresh cell retired)", sc.NumCells())
	}
	if sc.Map().Version() != 1 {
		t.Fatalf("map version = %d after aborted split, want 1", sc.Map().Version())
	}
	if sc.Stats().SplitAborts != 1 {
		t.Fatalf("split aborts = %d", sc.Stats().SplitAborts)
	}
	want := make(map[int64]bool, rows+len(written))
	for i := 1; i <= rows; i++ {
		want[int64(i)] = true
	}
	for id := range written {
		want[id] = true
	}
	assertExactlyOnce(t, sc, "kv", want)
	env.Stop()
	env.Shutdown()
}

// TestStaleSnapshotRetriesAfterSplit: a connection created before the split
// keeps routing on its old snapshot; its first statement on a moved key is
// rejected typed, refreshed and retried — never silently misrouted.
func TestStaleSnapshotRetriesAfterSplit(t *testing.T) {
	const rows = 80
	env, _, sc := newShard(t, 5, 1, 8, rows)
	env.Go("app", func(p *sim.Proc) {
		conn := sc.Connect("app") // snapshot at version 1
		if _, err := sc.Split(p); err != nil {
			t.Errorf("split: %v", err)
			return
		}
		// Find a key now owned by the new cell.
		moved := int64(-1)
		for i := 1; i <= rows; i++ {
			if sc.Map().Owner(int64(i)) == 1 {
				moved = int64(i)
				break
			}
		}
		if moved < 0 {
			t.Error("no key moved to cell 1")
			return
		}
		before := sc.Stats().WrongShardRetries
		set, err := conn.Query(p, "SELECT v FROM kv WHERE id = ?", sqlengine.NewInt(moved))
		if err != nil || len(set.Rows) != 1 {
			t.Errorf("stale read of %d: err=%v set=%v", moved, err, set)
			return
		}
		if sc.Stats().WrongShardRetries <= before {
			t.Error("stale snapshot was not corrected through ErrWrongShard")
		}
		if sc.Stats().MapRefreshes == 0 {
			t.Error("no map refresh recorded")
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()
}

// newSessionShard builds a sharded cluster whose cell proxies enforce the
// Session (read-your-writes) tier.
func newSessionShard(t *testing.T, seed int64, cells, slots, rows int) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	sc, err := New(env, cl, Config{
		Cells: cells,
		Slots: slots,
		Keyspace: Keyspace{
			Key:    map[string]string{"kv": "id"},
			Global: map[string]bool{"g": true},
		},
		Database: "app",
		Cell: cluster.Config{
			Mode:   repl.Async,
			Cost:   server.DefaultCostModel(),
			Master: cluster.NodeSpec{Place: place},
			Slaves: []cluster.NodeSpec{{Place: place}},
		},
		PartitionedPreload: kvPreload(rows),
		ClientPlace:        place,
		Consistency:        proxy.Session,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, sc
}

// hogSlave pins a slave's CPU with competing work until deadline so its
// applier cannot keep up.
func hogSlave(env *sim.Env, sl *repl.Slave, deadline time.Duration) {
	srv := sl.Srv
	for h := 0; h < 2; h++ {
		env.Go("hog", func(p *sim.Proc) {
			for p.Now() < sim.Time(deadline) {
				srv.Inst.Work(p, 50*time.Millisecond)
			}
		})
	}
}

// TestScatterHonorsSessionRYW: a cross-shard scatter read issued right after
// a write used to be able to miss the session's own row — the leg on the
// written cell could be served by a slave that had not applied the write
// yet. With the Session tier the per-cell token minted by the write must
// steer that leg to a caught-up backend (master fallback here, since the
// only slave is starved).
func TestScatterHonorsSessionRYW(t *testing.T) {
	const rows = 60
	env, sc := newSessionShard(t, 11, 3, 12, rows)
	for _, cell := range sc.Cells() {
		hogSlave(env, cell.Clu.Master().Slaves()[0], 30*time.Second)
	}
	env.Go("app", func(p *sim.Proc) {
		conn := sc.Connect("app")
		id := int64(rows + 1)
		if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'mine')", sqlengine.NewInt(id)); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		// The written cell's slave must still be behind, or the scatter leg
		// would see the row regardless of the token.
		owner := sc.Map().Owner(id)
		if sc.Cell(owner).Clu.Master().Slaves()[0].EventsBehindMaster() == 0 {
			t.Error("test setup: owning cell's slave is not lagging")
		}
		set, err := conn.Query(p, "SELECT id FROM kv ORDER BY id")
		if err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		found := false
		for _, r := range set.Rows {
			if r[0].Int() == id {
				found = true
			}
		}
		if !found {
			t.Error("scatter read right after the write missed the session's own row")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestSessionRYWAcrossSplit: writes mirrored by the split's dual-write
// window bypass the target cell's proxy, so no session token used to be
// minted there — after the map flipped, a read-your-writes read of a moved
// key could be served by a target slave that had never applied the
// mirrored write. The router now stamps the target cell's token at each
// dual write; with the target's only slave starved throughout, every
// post-flip read of a dual-written key must still find the row.
func TestSessionRYWAcrossSplit(t *testing.T) {
	const rows = 150
	env, sc := newSessionShard(t, 12, 1, 16, rows)
	// Starve the split target's slave from the moment the target cell
	// exists: it holds none of the mirrored writes when the map flips.
	env.Go("hog-watch", func(p *sim.Proc) {
		for sc.NumCells() < 2 {
			p.Sleep(5 * time.Millisecond)
		}
		hogSlave(env, sc.Cell(1).Clu.Master().Slaves()[0], 5*time.Minute)
	})
	splitDone := false
	var rep *SplitReport
	env.Go("splitter", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		r, err := sc.Split(p)
		if err != nil {
			t.Errorf("split: %v", err)
		}
		rep = r
		splitDone = true
	})
	checked := 0
	env.Go("app", func(p *sim.Proc) {
		conn := sc.Connect("app")
		var mirrored []int64
		next := int64(rows)
		for !splitDone {
			next++
			before := sc.Stats().DualWrites
			if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'live')", sqlengine.NewInt(next)); err != nil {
				t.Errorf("insert %d: %v", next, err)
				return
			}
			if sc.Stats().DualWrites > before {
				mirrored = append(mirrored, next)
			}
			p.Sleep(20 * time.Millisecond)
		}
		if rep == nil || rep.Aborted {
			t.Error("split did not complete")
			return
		}
		// The target's slave must still lag its master, or a stale read
		// could not be told from a correct one.
		if sc.Cell(1).Clu.Master().Slaves()[0].EventsBehindMaster() == 0 {
			t.Error("test setup: target slave caught up before the read-back")
		}
		for _, id := range mirrored {
			if sc.Map().Owner(id) != 1 {
				continue
			}
			checked++
			set, err := conn.Query(p, "SELECT v FROM kv WHERE id = ?", sqlengine.NewInt(id))
			if err != nil {
				t.Errorf("read %d: %v", id, err)
				return
			}
			if len(set.Rows) != 1 || set.Rows[0][0].Str() != "live" {
				t.Errorf("session read of dual-written key %d missed the write after the flip", id)
			}
		}
	})
	env.RunUntil(5 * time.Minute)
	if t.Failed() {
		t.FailNow()
	}
	if sc.Stats().DualWrites == 0 {
		t.Fatal("no dual-writes exercised")
	}
	if checked == 0 {
		t.Fatal("no dual-written key was read back on the new cell")
	}
	env.Stop()
	env.Shutdown()
}

// TestShardDeterminism runs the same seeded scenario twice and requires a
// byte-identical fingerprint of stats, map state and per-cell key sets.
func TestShardDeterminism(t *testing.T) {
	run := func() string {
		const rows = 100
		env, _, sc := newShard(t, 7, 1, 16, rows)
		stop := false
		nextID := int64(rows)
		env.Go("writer", func(p *sim.Proc) {
			conn := sc.Connect("app")
			for !stop {
				nextID++
				if _, err := conn.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'live')", sqlengine.NewInt(nextID)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := conn.Query(p, "SELECT id FROM kv ORDER BY id DESC LIMIT 5"); err != nil {
					t.Errorf("scatter: %v", err)
					return
				}
				p.Sleep(30 * time.Millisecond)
			}
		})
		var rep *SplitReport
		env.Go("splitter", func(p *sim.Proc) {
			p.Sleep(time.Second)
			rep, _ = sc.Split(p)
			p.Sleep(time.Second)
			stop = true
		})
		env.RunUntil(5 * time.Minute)
		sets, err := sc.Keys("kv")
		if err != nil {
			t.Fatal(err)
		}
		fp := fmt.Sprintf("stats=%+v version=%d cells=%d rep=%+v now=%d\n",
			sc.Stats(), sc.Map().Version(), sc.NumCells(), rep, env.Now())
		for i, set := range sets {
			keys := make([]int64, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			fp += fmt.Sprintf("cell%d=%v\n", i, keys)
		}
		env.Stop()
		env.Shutdown()
		return fp
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identically-seeded sharded runs diverged:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
}
