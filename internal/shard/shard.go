// Package shard partitions the database tier into independent replicated
// cells, the step past the paper's single-master ceiling. Each cell is a
// full cluster.Cluster (one master, N slaves, its own proxy); a versioned
// ShardMap assigns hash slots of the application's integer key space to
// cells; and a router in front of the per-cell proxies sends single-key
// statements to the owning cell, fans multi-key reads out as scatter-gather
// with merged results, and forwards writes to the owning cell's master.
//
// The layout follows the Availability-Zones framing: the global database is
// the disjoint union of cell-local databases, plus a small set of "global"
// tables replicated into every cell. Child tables are co-located with their
// parent by sharding on the parent's key (attendance/event_tags/comments on
// event_id next to events on id), so parent-child joins stay cell-local.
//
// Cells can be added online: Split carves half of the busiest cell's slots
// into a fresh cell with a copy-then-cutover protocol — dual-write window,
// binlog catch-up, a drain barrier at cutover — measured and bounded so the
// observable write-unavailability is the barrier window only.
package shard

import (
	"fmt"
	"sort"
)

// Keyspace declares how the application's schema maps onto the shard key
// space. Tables absent from both maps are treated as global (replicated
// everywhere), which keeps DDL and auxiliary tables working unrouted.
type Keyspace struct {
	// Key maps each sharded table (lowercase) to its integer shard-key
	// column. Child tables co-locate with their parent by naming the
	// parent's key: sharding attendance on event_id places an event's
	// attendance rows in the cell that owns the event.
	Key map[string]string
	// Global marks small fully-replicated tables (lowercase): reads may be
	// served by any one cell, writes broadcast to all cells.
	Global map[string]bool
}

// keyColumn returns the shard-key column for a sharded table.
func (ks Keyspace) keyColumn(table string) (string, bool) {
	col, ok := ks.Key[table]
	return col, ok
}

// sharded reports whether the table is partitioned.
func (ks Keyspace) sharded(table string) bool {
	_, ok := ks.Key[table]
	return ok
}

// shardedTables returns the sharded table names in sorted order — the
// deterministic iteration order for preload, copy and cleanup.
func (ks Keyspace) shardedTables() []string {
	out := make([]string, 0, len(ks.Key))
	for t := range ks.Key {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Validate rejects a keyspace that declares a table both sharded and
// global, or a sharded table without a key column.
func (ks Keyspace) Validate() error {
	for _, t := range ks.shardedTables() { // sorted: the reported table must not vary run-to-run
		if ks.Key[t] == "" {
			return fmt.Errorf("shard: table %q has no key column", t)
		}
		if ks.Global[t] {
			return fmt.Errorf("shard: table %q is both sharded and global", t)
		}
	}
	return nil
}

// slotOf hashes a shard key onto one of numSlots slots with a splitmix64
// finalizer: every key of every sharded table uses the same function, so
// equal key values co-locate across tables (events.id and
// attendance.event_id land in the same slot), and assignment is stable
// across map versions — a key changes cells only when its slot is moved.
func slotOf(key int64, numSlots int) int {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(numSlots))
}
