package shard

import (
	"fmt"
	"sort"
)

// Map is the authoritative slot→cell assignment. Keys hash onto a fixed
// number of slots (hash sharding); slots are assigned to cells in
// contiguous ranges (range ownership), so a split moves a compact slot
// range rather than rehashing the world. The map is versioned: every Move
// bumps Version, and routers carry immutable Snapshots so a statement
// routed on a stale map fails typed (proxy.ErrWrongShard) instead of
// silently landing on the wrong cell.
type Map struct {
	numSlots int
	slots    []int // slot -> owning cell id
	version  uint64
}

// NewMap assigns numSlots slots to cells in contiguous near-equal ranges.
func NewMap(numSlots, cells int) *Map {
	if numSlots < 1 || cells < 1 || cells > numSlots {
		panic(fmt.Sprintf("shard: bad map shape %d slots / %d cells", numSlots, cells))
	}
	m := &Map{numSlots: numSlots, slots: make([]int, numSlots), version: 1}
	for s := 0; s < numSlots; s++ {
		m.slots[s] = s * cells / numSlots
	}
	return m
}

// NumSlots returns the fixed slot count.
func (m *Map) NumSlots() int { return m.numSlots }

// Version returns the current map version; it increases on every Move.
func (m *Map) Version() uint64 { return m.version }

// SlotOf returns the slot a key hashes to — independent of version.
func (m *Map) SlotOf(key int64) int { return slotOf(key, m.numSlots) }

// Owner returns the cell currently owning a key.
func (m *Map) Owner(key int64) int { return m.slots[m.SlotOf(key)] }

// SlotOwner returns the cell currently owning a slot.
func (m *Map) SlotOwner(slot int) int { return m.slots[slot] }

// SlotsOwnedBy returns the slots a cell owns, ascending.
func (m *Map) SlotsOwnedBy(cell int) []int {
	var out []int
	for s, c := range m.slots {
		if c == cell {
			out = append(out, s)
		}
	}
	return out
}

// CellLoads returns slot counts per cell id up to maxCell (inclusive).
func (m *Map) CellLoads(maxCell int) []int {
	out := make([]int, maxCell+1)
	for _, c := range m.slots {
		if c >= 0 && c <= maxCell {
			out[c]++
		}
	}
	return out
}

// Move reassigns the given slots to dst and bumps the version. This is the
// cutover instant of a split: it must happen only after dst holds every
// row of the moved slots.
func (m *Map) Move(slots []int, dst int) {
	for _, s := range slots {
		m.slots[s] = dst
	}
	m.version++
}

// Snapshot returns an immutable copy for a router to route against.
func (m *Map) Snapshot() *Snapshot {
	s := &Snapshot{numSlots: m.numSlots, version: m.version, slots: make([]int, len(m.slots))}
	copy(s.slots, m.slots)
	return s
}

// Snapshot is a frozen view of the map. Connections cache one and refresh
// it only on proxy.ErrWrongShard, so the stale-map retry path is exercised
// by every topology change rather than hidden by eager invalidation.
type Snapshot struct {
	numSlots int
	slots    []int
	version  uint64
}

// Version returns the version the snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// SlotOf returns the slot a key hashes to.
func (s *Snapshot) SlotOf(key int64) int { return slotOf(key, s.numSlots) }

// Owner returns the cell owning a key in this snapshot.
func (s *Snapshot) Owner(key int64) int { return s.slots[s.SlotOf(key)] }

// Cells returns the distinct cell ids owning at least one slot, ascending —
// the scatter-gather target set.
func (s *Snapshot) Cells() []int {
	seen := make(map[int]bool, 8)
	var out []int
	for _, c := range s.slots {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}
