package shard

import (
	"testing"
)

// TestMapShapes checks the constructor's invariants over a grid of shapes:
// every slot has exactly one owner, loads are near-equal, and ranges are
// contiguous (range ownership over hash slots).
func TestMapShapes(t *testing.T) {
	for _, slots := range []int{1, 2, 16, 64, 97} {
		for cells := 1; cells <= slots && cells <= 9; cells++ {
			m := NewMap(slots, cells)
			loads := m.CellLoads(cells - 1)
			total, minL, maxL := 0, slots, 0
			for _, n := range loads {
				total += n
				if n < minL {
					minL = n
				}
				if n > maxL {
					maxL = n
				}
			}
			if total != slots {
				t.Fatalf("%d/%d: %d slots owned, want %d (exactly one owner each)", slots, cells, total, slots)
			}
			if maxL-minL > 1 {
				t.Fatalf("%d/%d: loads %v not near-equal", slots, cells, loads)
			}
			prev := -1
			for s := 0; s < slots; s++ {
				if c := m.SlotOwner(s); c < prev {
					t.Fatalf("%d/%d: ranges not contiguous at slot %d", slots, cells, s)
				} else {
					prev = c
				}
			}
		}
	}
}

func TestNewMapRejectsBadShapes(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {4, 0}, {4, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMap(%d, %d) did not panic", tc[0], tc[1])
				}
			}()
			NewMap(tc[0], tc[1])
		}()
	}
}

// TestAssignmentStability is the property that makes splits cheap: a key's
// slot never depends on the map version or the cell count, so moving a slot
// set relocates exactly the keys of those slots and no others.
func TestAssignmentStability(t *testing.T) {
	m := NewMap(64, 2)
	keys := make([]int64, 0, 512)
	for k := int64(-255); k <= 256; k++ {
		keys = append(keys, k*7919) // spread over the int64 range, incl. negatives
	}
	slotBefore := make(map[int64]int, len(keys))
	ownerBefore := make(map[int64]int, len(keys))
	for _, k := range keys {
		slotBefore[k] = m.SlotOf(k)
		ownerBefore[k] = m.Owner(k)
	}
	moved := map[int]bool{3: true, 17: true, 40: true}
	m.Move([]int{3, 17, 40}, 5)
	for _, k := range keys {
		if got := m.SlotOf(k); got != slotBefore[k] {
			t.Fatalf("key %d changed slot %d -> %d across Move", k, slotBefore[k], got)
		}
		want := ownerBefore[k]
		if moved[slotBefore[k]] {
			want = 5
		}
		if got := m.Owner(k); got != want {
			t.Fatalf("key %d owner = %d, want %d", k, got, want)
		}
	}
	// Same function across tables: equal key values co-locate.
	if m.SlotOf(42) != slotOf(42, 64) {
		t.Fatal("Map.SlotOf disagrees with package slotOf")
	}
}

// TestExactlyOneOwnerAcrossMoves walks a map through a split-like sequence
// of moves and checks after each step that every slot — hence every key —
// has exactly one owner.
func TestExactlyOneOwnerAcrossMoves(t *testing.T) {
	m := NewMap(32, 1)
	steps := [][]int{
		m.SlotsOwnedBy(0)[16:], // split: upper half to cell 1
		{0, 1, 2, 3},           // rebalance a prefix to cell 2
		{31},                   // a single slot back and forth
	}
	dst := 1
	for _, slots := range steps {
		v0 := m.Version()
		m.Move(slots, dst)
		if m.Version() != v0+1 {
			t.Fatalf("version %d after Move, want %d", m.Version(), v0+1)
		}
		owned := 0
		for c := 0; c <= dst; c++ {
			owned += len(m.SlotsOwnedBy(c))
		}
		if owned != m.NumSlots() {
			t.Fatalf("%d slots owned after move to %d, want %d", owned, dst, m.NumSlots())
		}
		dst++
	}
}

// TestSnapshotImmutability: a snapshot keeps routing on the topology it was
// taken under — the stale-snapshot behaviour the ErrWrongShard retry path
// depends on.
func TestSnapshotImmutability(t *testing.T) {
	m := NewMap(16, 2)
	snap := m.Snapshot()
	m.Move(m.SlotsOwnedBy(1), 2)
	if snap.Version() == m.Version() {
		t.Fatal("snapshot version moved with the map")
	}
	for s := 0; s < 16; s++ {
		if snap.slots[s] == 2 {
			t.Fatal("snapshot observed a post-snapshot move")
		}
	}
	cells := m.Snapshot().Cells()
	if len(cells) != 2 || cells[0] != 0 || cells[1] != 2 {
		t.Fatalf("live cells = %v, want [0 2]", cells)
	}
}
