package shard

import (
	"fmt"
	"sort"
	"strings"

	"cloudrepl/internal/proxy"
	"cloudrepl/internal/sqlengine"
)

// routeKind classifies where a statement must run.
type routeKind int

const (
	// routeSingle pins the statement to the cell owning its shard key.
	routeSingle routeKind = iota
	// routeScatter fans a multi-key read out to every slot-owning cell and
	// merges the per-cell results.
	routeScatter
	// routeAny runs on any one cell (global-table reads, table-less
	// selects) — every cell holds the data.
	routeAny
	// routeBroadcast runs on every cell (DDL, global-table writes).
	routeBroadcast
)

// keyRef locates one shard-key value in a statement: a positional argument
// (param >= 0) or an inline literal.
type keyRef struct {
	param int // argument index, -1 for literal
	lit   int64
}

// routeInfo is the cached routing decision for one statement text. The
// client workload is a small set of parameterized templates, so analysis
// runs once per template and every execution only resolves key arguments.
type routeInfo struct {
	kind  routeKind
	write bool
	table string   // owning sharded table for routeSingle
	keys  []keyRef // shard keys; all must resolve to one owner at exec
	plan  *mergePlan
	err   error
}

// analyze parses sql and derives its route against ks. It never fails hard:
// statements it cannot understand fall back to routeAny (reads) or
// routeBroadcast (writes) so the engine — not the router — reports errors,
// except scatter reads whose merge is semantically unsupported (err set).
func analyze(sql string, ks Keyspace) *routeInfo {
	stmt, perr := sqlengine.Parse(sql)
	if perr != nil {
		// Let one engine produce the authoritative parse error.
		return &routeInfo{kind: routeAny, write: !proxy.IsRead(sql)}
	}
	switch s := stmt.(type) {
	case *sqlengine.SelectStmt:
		return analyzeSelect(s, ks)
	case *sqlengine.InsertStmt:
		return analyzeInsert(s, ks)
	case *sqlengine.UpdateStmt:
		return analyzeWhereWrite(s.Table, s.Where, ks)
	case *sqlengine.DeleteStmt:
		return analyzeWhereWrite(s.Table, s.Where, ks)
	default:
		// DDL, USE, transaction control: every cell must see it.
		return &routeInfo{kind: routeBroadcast, write: true}
	}
}

// analyzeSelect routes a read: single-key when any sharded table in scope
// is pinned by an equality on its key column (co-located joins stay
// correct because child tables hash the parent key), scatter otherwise.
func analyzeSelect(s *sqlengine.SelectStmt, ks Keyspace) *routeInfo {
	if s.From == nil {
		return &routeInfo{kind: routeAny}
	}
	type scopeEntry struct {
		ref   string // name in scope (alias or table name), lowered
		table string // real table name, lowered
	}
	scope := []scopeEntry{{strings.ToLower(refName(*s.From)), strings.ToLower(s.From.Name)}}
	for _, j := range s.Joins {
		scope = append(scope, scopeEntry{strings.ToLower(refName(j.Table)), strings.ToLower(j.Table.Name)})
	}
	anySharded := false
	for _, e := range scope {
		if ks.sharded(e.table) {
			anySharded = true
		}
	}
	if !anySharded {
		// Global (or unknown) tables only: any one cell answers.
		return &routeInfo{kind: routeAny}
	}
	// Look for <key column> = <param|literal> among the top-level AND
	// conjuncts. Unqualified columns are attributed to the FROM table;
	// qualified ones resolve through the scope.
	for _, conj := range conjuncts(s.Where) {
		b, ok := conj.(*sqlengine.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		col, val := eqSides(b)
		if col == nil {
			continue
		}
		table := ""
		if col.Table != "" {
			q := strings.ToLower(col.Table)
			for _, e := range scope {
				if e.ref == q {
					table = e.table
				}
			}
		} else {
			table = scope[0].table
		}
		kc, ok := ks.keyColumn(table)
		if !ok || !strings.EqualFold(col.Name, kc) {
			continue
		}
		kr, ok := keyRefOf(val)
		if !ok {
			continue
		}
		return &routeInfo{kind: routeSingle, table: table, keys: []keyRef{kr}}
	}
	plan, err := buildMergePlan(s)
	return &routeInfo{kind: routeScatter, plan: plan, err: err}
}

// analyzeInsert routes an INSERT by the shard-key column value of its rows.
func analyzeInsert(s *sqlengine.InsertStmt, ks Keyspace) *routeInfo {
	table := strings.ToLower(s.Table.Name)
	kc, ok := ks.keyColumn(table)
	if !ok {
		return &routeInfo{kind: routeBroadcast, write: true}
	}
	kidx := -1
	for i, c := range s.Columns {
		if strings.EqualFold(c, kc) {
			kidx = i
		}
	}
	if kidx < 0 {
		return &routeInfo{err: fmt.Errorf("shard: INSERT INTO %s omits shard key %s", table, kc)}
	}
	ri := &routeInfo{kind: routeSingle, write: true, table: table}
	for _, row := range s.Rows {
		if kidx >= len(row) {
			return &routeInfo{err: fmt.Errorf("shard: INSERT INTO %s row shorter than column list", table)}
		}
		kr, ok := keyRefOf(row[kidx])
		if !ok {
			return &routeInfo{err: fmt.Errorf("shard: INSERT INTO %s has non-integer shard key", table)}
		}
		ri.keys = append(ri.keys, kr)
	}
	return ri
}

// analyzeWhereWrite routes UPDATE/DELETE: single-key on key equality,
// broadcast otherwise (each cell touches only the rows it owns, so a
// broadcast write is correct, just not cheap).
func analyzeWhereWrite(t sqlengine.TableRef, where sqlengine.Expr, ks Keyspace) *routeInfo {
	table := strings.ToLower(t.Name)
	kc, ok := ks.keyColumn(table)
	if !ok {
		return &routeInfo{kind: routeBroadcast, write: true}
	}
	for _, conj := range conjuncts(where) {
		b, ok := conj.(*sqlengine.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		col, val := eqSides(b)
		if col == nil || (col.Table != "" && !strings.EqualFold(col.Table, refName(t))) {
			continue
		}
		if !strings.EqualFold(col.Name, kc) {
			continue
		}
		if kr, ok := keyRefOf(val); ok {
			return &routeInfo{kind: routeSingle, write: true, table: table, keys: []keyRef{kr}}
		}
	}
	return &routeInfo{kind: routeBroadcast, write: true}
}

// refName mirrors the engine's scope naming: alias when present.
func refName(t sqlengine.TableRef) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// conjuncts flattens a WHERE tree's top-level ANDs.
func conjuncts(e sqlengine.Expr) []sqlengine.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlengine.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlengine.Expr{e}
}

// eqSides splits `col = value` regardless of side order.
func eqSides(b *sqlengine.Binary) (*sqlengine.ColRef, sqlengine.Expr) {
	if c, ok := b.L.(*sqlengine.ColRef); ok {
		return c, b.R
	}
	if c, ok := b.R.(*sqlengine.ColRef); ok {
		return c, b.L
	}
	return nil, nil
}

// keyRefOf extracts a shard-key reference from a value expression.
func keyRefOf(e sqlengine.Expr) (keyRef, bool) {
	switch v := e.(type) {
	case *sqlengine.Param:
		return keyRef{param: v.Index}, true
	case *sqlengine.Literal:
		if v.V.Kind() == sqlengine.KindInt {
			return keyRef{param: -1, lit: v.V.Int()}, true
		}
	}
	return keyRef{}, false
}

// resolveKeys materializes the statement's shard keys against its
// arguments. Every key must be an integer.
func (ri *routeInfo) resolveKeys(args []sqlengine.Value) ([]int64, error) {
	out := make([]int64, 0, len(ri.keys))
	for _, kr := range ri.keys {
		if kr.param < 0 {
			out = append(out, kr.lit)
			continue
		}
		if kr.param >= len(args) {
			return nil, fmt.Errorf("shard: missing argument %d for shard key", kr.param+1)
		}
		v := args[kr.param]
		if v.Kind() != sqlengine.KindInt {
			return nil, fmt.Errorf("shard: shard key argument %d is %v, want integer", kr.param+1, v.Kind())
		}
		out = append(out, v.Int())
	}
	return out, nil
}

// --- scatter merge plans ---

// orderKey is one resolved merge-sort key: a column position in the
// per-cell result, or a column name resolved against the result header at
// merge time (SELECT * queries).
type orderKey struct {
	pos    int    // -1: resolve byName at merge
	byName string // lowercase column name when pos < 0
	desc   bool
}

// aggSpec is one re-aggregated output column.
type aggSpec struct {
	op string // "group" | "count" | "sum" | "min" | "max"
}

// mergePlan turns per-cell partial results into the global result. Two
// shapes: plain (sort-merge with LIMIT pushdown) and aggregate
// (re-aggregate COUNT/SUM/MIN/MAX over group keys, then order and limit).
type mergePlan struct {
	cellSQL  string // rewritten per-cell statement (same parameter order)
	dropCols int    // helper ORDER BY columns appended to the select list
	distinct bool
	orderBy  []orderKey
	limit    int // folded literal LIMIT+OFFSET pushed down per cell; -1 none
	offset   int
	aggs     []aggSpec // non-nil → aggregate shape
}

// buildMergePlan rewrites a SELECT for scatter execution. Unsupported
// shapes (HAVING, DISTINCT aggregates, AVG) return an error — the router
// surfaces it instead of merging wrong answers.
func buildMergePlan(s *sqlengine.SelectStmt) (*mergePlan, error) {
	if s.Having != nil {
		return nil, fmt.Errorf("shard: scatter SELECT with HAVING is not supported")
	}
	hasAgg := false
	for _, se := range s.Exprs {
		if se.Star {
			continue
		}
		if f, ok := se.Expr.(*sqlengine.FuncCall); ok && isAggregate(f.Name) {
			hasAgg = true
		}
	}
	if hasAgg || len(s.GroupBy) > 0 {
		return buildAggregatePlan(s)
	}
	return buildPlainPlan(s)
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// buildPlainPlan handles SELECT without aggregation: each cell runs the
// query (with ORDER BY columns made projectable and LIMIT+OFFSET pushed
// down), the merge concatenates in cell order, sorts stably by the order
// keys, deduplicates under DISTINCT, applies OFFSET/LIMIT and strips
// helper columns.
func buildPlainPlan(s *sqlengine.SelectStmt) (*mergePlan, error) {
	out := *s
	out.Exprs = append([]sqlengine.SelectExpr(nil), s.Exprs...)
	plan := &mergePlan{distinct: s.Distinct, limit: -1, offset: 0}

	star := len(s.Exprs) == 1 && s.Exprs[0].Star
	for _, o := range s.OrderBy {
		ok := orderKey{pos: -1, desc: o.Desc}
		if pos := findProjection(out.Exprs, o.Expr); pos >= 0 {
			ok.pos = pos
		} else if star {
			c, isCol := o.Expr.(*sqlengine.ColRef)
			if !isCol {
				return nil, fmt.Errorf("shard: scatter SELECT * ordered by a non-column expression")
			}
			ok.byName = strings.ToLower(c.Name)
		} else {
			// Append the order expression as a helper projection so the
			// merge can sort on it, then strip it from the final rows.
			out.Exprs = append(out.Exprs, sqlengine.SelectExpr{Expr: o.Expr})
			ok.pos = len(out.Exprs) - 1
			plan.dropCols++
		}
		plan.orderBy = append(plan.orderBy, ok)
	}
	if plan.dropCols > 0 && s.Distinct {
		return nil, fmt.Errorf("shard: scatter DISTINCT ordered by an unprojected column")
	}

	// Push LIMIT+OFFSET down: each cell returns at most limit+offset rows
	// (any global top-K is contained in the union of per-cell top-Ks); the
	// true offset applies after the merge. Parameterized limits stay
	// merge-side only.
	lim, limLit := literalInt(s.Limit)
	off, offLit := literalInt(s.Offset)
	if s.Limit != nil && !limLit || s.Offset != nil && !offLit {
		return nil, fmt.Errorf("shard: scatter SELECT with parameterized LIMIT/OFFSET is not supported")
	}
	if limLit {
		plan.limit = lim
	}
	if offLit {
		plan.offset = off
	}
	out.Offset = nil
	out.Limit = nil
	if limLit {
		total := lim + off
		out.Limit = &sqlengine.Literal{V: sqlengine.NewInt(int64(total))}
	}
	plan.cellSQL = out.String()
	return plan, nil
}

// buildAggregatePlan handles GROUP BY / aggregate selects: each cell
// aggregates its own rows (ORDER BY and LIMIT stripped — global order
// needs global totals), the merge combines partial aggregates per group
// key and re-applies ORDER BY/LIMIT. COUNT and SUM add, MIN/MAX compare;
// AVG and DISTINCT aggregates don't decompose and are rejected.
func buildAggregatePlan(s *sqlengine.SelectStmt) (*mergePlan, error) {
	if s.Distinct {
		return nil, fmt.Errorf("shard: scatter SELECT DISTINCT with aggregation is not supported")
	}
	plan := &mergePlan{limit: -1}
	for _, se := range s.Exprs {
		if se.Star {
			return nil, fmt.Errorf("shard: scatter aggregate with * projection is not supported")
		}
		if f, ok := se.Expr.(*sqlengine.FuncCall); ok && isAggregate(f.Name) {
			if f.Distinct {
				return nil, fmt.Errorf("shard: scatter %s(DISTINCT) does not decompose", f.Name)
			}
			switch f.Name {
			case "COUNT":
				plan.aggs = append(plan.aggs, aggSpec{op: "count"})
			case "SUM":
				plan.aggs = append(plan.aggs, aggSpec{op: "sum"})
			case "MIN":
				plan.aggs = append(plan.aggs, aggSpec{op: "min"})
			case "MAX":
				plan.aggs = append(plan.aggs, aggSpec{op: "max"})
			default:
				return nil, fmt.Errorf("shard: scatter %s does not decompose", f.Name)
			}
			continue
		}
		// Non-aggregate projection must be a group key.
		if findExpr(s.GroupBy, se.Expr) < 0 {
			return nil, fmt.Errorf("shard: scatter projection %s is neither aggregate nor group key", se.Expr.String())
		}
		plan.aggs = append(plan.aggs, aggSpec{op: "group"})
	}
	for _, o := range s.OrderBy {
		pos := findProjection(s.Exprs, o.Expr)
		if pos < 0 {
			return nil, fmt.Errorf("shard: scatter aggregate ordered by an unprojected expression")
		}
		plan.orderBy = append(plan.orderBy, orderKey{pos: pos, desc: o.Desc})
	}
	lim, limLit := literalInt(s.Limit)
	off, offLit := literalInt(s.Offset)
	if s.Limit != nil && !limLit || s.Offset != nil && !offLit {
		return nil, fmt.Errorf("shard: scatter aggregate with parameterized LIMIT/OFFSET is not supported")
	}
	if limLit {
		plan.limit = lim
	}
	if offLit {
		plan.offset = off
	}
	out := *s
	out.OrderBy = nil
	out.Limit = nil
	out.Offset = nil
	plan.cellSQL = out.String()
	return plan, nil
}

// findProjection locates an ORDER BY expression in the select list: by
// alias reference, then by syntactic equality.
func findProjection(exprs []sqlengine.SelectExpr, e sqlengine.Expr) int {
	if c, ok := e.(*sqlengine.ColRef); ok && c.Table == "" {
		for i, se := range exprs {
			if se.Alias != "" && strings.EqualFold(se.Alias, c.Name) {
				return i
			}
		}
	}
	want := e.String()
	for i, se := range exprs {
		if se.Star || se.Expr == nil {
			continue
		}
		if se.Expr.String() == want {
			return i
		}
		if c, ok := e.(*sqlengine.ColRef); ok && c.Table == "" {
			if pc, ok := se.Expr.(*sqlengine.ColRef); ok && strings.EqualFold(pc.Name, c.Name) {
				return i
			}
		}
	}
	return -1
}

func findExpr(list []sqlengine.Expr, e sqlengine.Expr) int {
	want := e.String()
	for i, g := range list {
		if g.String() == want {
			return i
		}
	}
	return -1
}

// literalInt evaluates a literal integer expression (LIMIT/OFFSET).
func literalInt(e sqlengine.Expr) (int, bool) {
	l, ok := e.(*sqlengine.Literal)
	if !ok || l.V.Kind() != sqlengine.KindInt {
		return 0, false
	}
	return int(l.V.Int()), true
}

// merge combines per-cell result sets (in ascending cell order) into the
// global result. The concatenation order is deterministic and the sort is
// stable, so merged output is byte-identical across runs.
func (plan *mergePlan) merge(sets []*sqlengine.ResultSet) (*sqlengine.ResultSet, error) {
	if len(sets) == 0 {
		return &sqlengine.ResultSet{}, nil
	}
	out := &sqlengine.ResultSet{Columns: sets[0].Columns}
	for _, s := range sets {
		out.Rows = append(out.Rows, s.Rows...)
	}
	if plan.aggs != nil {
		if err := plan.reaggregate(out); err != nil {
			return nil, err
		}
	}
	keys := make([]orderKey, len(plan.orderBy))
	copy(keys, plan.orderBy)
	for i, k := range keys {
		if k.pos >= 0 {
			continue
		}
		found := -1
		for ci, name := range out.Columns {
			if strings.EqualFold(name, k.byName) {
				found = ci
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("shard: merge order column %q not in result", k.byName)
		}
		keys[i].pos = found
	}
	if len(keys) > 0 {
		sort.SliceStable(out.Rows, func(i, j int) bool {
			a, b := out.Rows[i], out.Rows[j]
			for _, k := range keys {
				c := sqlengine.Compare(a[k.pos], b[k.pos])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if plan.distinct {
		seen := make(map[string]bool, len(out.Rows))
		kept := out.Rows[:0]
		for _, r := range out.Rows {
			k := rowFingerprint(r)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		out.Rows = kept
	}
	if plan.offset > 0 {
		if plan.offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[plan.offset:]
		}
	}
	if plan.limit >= 0 && len(out.Rows) > plan.limit {
		out.Rows = out.Rows[:plan.limit]
	}
	if plan.dropCols > 0 {
		keep := len(out.Columns) - plan.dropCols
		out.Columns = out.Columns[:keep]
		for i, r := range out.Rows {
			out.Rows[i] = r[:keep]
		}
	}
	return out, nil
}

// reaggregate folds concatenated per-cell partials into one row per group
// key, in first-seen order (deterministic given the ordered concat).
func (plan *mergePlan) reaggregate(rs *sqlengine.ResultSet) error {
	if len(plan.aggs) != len(rs.Columns) {
		return fmt.Errorf("shard: aggregate merge expected %d columns, got %d", len(plan.aggs), len(rs.Columns))
	}
	index := make(map[string]int)
	var merged [][]sqlengine.Value
	for _, row := range rs.Rows {
		var kb strings.Builder
		for i, a := range plan.aggs {
			if a.op == "group" {
				kb.WriteString(row[i].SQL())
				kb.WriteByte('\x00')
			}
		}
		key := kb.String()
		at, ok := index[key]
		if !ok {
			index[key] = len(merged)
			merged = append(merged, append([]sqlengine.Value(nil), row...))
			continue
		}
		acc := merged[at]
		for i, a := range plan.aggs {
			switch a.op {
			case "group":
			case "count", "sum":
				acc[i] = addValues(acc[i], row[i])
			case "min":
				if sqlengine.Compare(row[i], acc[i]) < 0 {
					acc[i] = row[i]
				}
			case "max":
				if sqlengine.Compare(row[i], acc[i]) > 0 {
					acc[i] = row[i]
				}
			}
		}
	}
	rs.Rows = merged
	return nil
}

// addValues sums two partial COUNT/SUM results, staying integer when both
// sides are integers.
func addValues(a, b sqlengine.Value) sqlengine.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if a.Kind() == sqlengine.KindInt && b.Kind() == sqlengine.KindInt {
		return sqlengine.NewInt(a.Int() + b.Int())
	}
	return sqlengine.NewFloat(a.Float() + b.Float())
}

// rowFingerprint renders a row for DISTINCT comparison.
func rowFingerprint(row []sqlengine.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.SQL())
		b.WriteByte('\x00')
	}
	return b.String()
}
