package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// Config describes a sharded deployment.
type Config struct {
	// Cells is the initial cell count (>= 1).
	Cells int
	// Slots is the hash-slot count (default 64). It bounds how many cells
	// the cluster can ever grow to and how finely Split can rebalance.
	Slots int
	// Keyspace maps the schema onto the shard key space.
	Keyspace Keyspace
	// Database is the application database name; the split catch-up replay
	// filters binlog entries to it (heartbeat and other auxiliary
	// databases stay cell-local).
	Database string
	// Cell is the per-cell cluster template. NamePrefix and Preload are
	// overwritten per cell ("cell<i>/" and the partitioned preload).
	Cell cluster.Config
	// PartitionedPreload builds a cell's preload from an ownership
	// predicate: the cell loads exactly the rows it owns (plus global
	// tables, for which owns always reports true).
	PartitionedPreload func(owns func(table string, key int64) bool) func(srv *server.DBServer) error
	// ClientPlace locates the client tier for every cell proxy.
	ClientPlace cloud.Placement
	// Balancer builds one read balancer per cell (each cell needs its own
	// instance — balancers keep per-slave state).
	Balancer func() proxy.Balancer
	// ReadYourWrites and Retry configure every cell proxy.
	ReadYourWrites bool
	Retry          proxy.RetryPolicy
	// Consistency is the read tier every cell proxy enforces. Session
	// tokens are tracked per cell: each routed connection holds one proxy
	// connection (and thus one token) per cell, and dual-writes during a
	// split stamp the target cell's token so read-your-writes survives
	// the ownership flip.
	Consistency proxy.Consistency
	// MaxStaleEvents bounds the Bounded tier per cell
	// (0 = proxy.DefaultMaxEventsBehind).
	MaxStaleEvents uint64
}

// Cell is one replicated partition: a full master/slaves cluster behind its
// own proxy, with a private metrics registry that PublishMetrics merges
// into the top-level one under "shard.cell<i>.".
type Cell struct {
	ID  int
	Clu *cluster.Cluster
	Px  *proxy.Proxy
	Reg *obs.Registry
}

// Stats are the router's cumulative counters.
type Stats struct {
	SingleKey         uint64 // statements routed to one owning cell
	ScatterOps        uint64 // scatter-gather reads (whole operations)
	ScatterLegs       uint64 // per-cell legs issued by scatters
	Broadcasts        uint64 // statements sent to every cell
	AnyReads          uint64 // global-table reads served by one cell
	WrongShardRetries uint64 // ErrWrongShard observed and retried
	MapRefreshes      uint64 // stale snapshots replaced after ErrWrongShard
	DualWrites        uint64 // writes mirrored to the split target
	Splits            uint64 // completed splits/rebalances
	SplitAborts       uint64 // splits abandoned (dead target, topology change)
	MovedRows         uint64 // rows copied by splits
	ReplayedEntries   uint64 // binlog entries replayed during catch-up
	Errors            uint64 // statements failed after routing
}

// Cluster is the sharded database tier: N cells, the authoritative Map and
// the statement router. It is constructed once per simulation and driven
// entirely from simulation processes.
type Cluster struct {
	env   *sim.Env
	cloud *cloud.Cloud
	cfg   Config
	ks    Keyspace
	m     *Map
	cells []*Cell

	routes map[string]*routeInfo
	mig    *migration
	stats  Stats

	hSingle  metrics.Histogram // successful single-key statement latency
	hScatter metrics.Histogram // successful scatter-gather read latency

	tracer *obs.Tracer
}

// New builds the cells (each preloaded with exactly the rows it owns) and
// the routing layer. Cells are numbered 0..Cells-1 and their instances are
// named "cell<i>/master", "cell<i>/slave<j>".
func New(env *sim.Env, cl *cloud.Cloud, cfg Config) (*Cluster, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("shard: need at least one cell")
	}
	if cfg.Slots == 0 {
		cfg.Slots = 64
	}
	if cfg.Cells > cfg.Slots {
		return nil, fmt.Errorf("shard: %d cells exceed %d slots", cfg.Cells, cfg.Slots)
	}
	if err := cfg.Keyspace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Balancer == nil {
		cfg.Balancer = func() proxy.Balancer { return &proxy.RoundRobin{} }
	}
	s := &Cluster{
		env:    env,
		cloud:  cl,
		cfg:    cfg,
		ks:     cfg.Keyspace,
		m:      NewMap(cfg.Slots, cfg.Cells),
		routes: make(map[string]*routeInfo),
	}
	s.hSingle.SetRand(env.Rand())
	s.hScatter.SetRand(env.Rand())
	for i := 0; i < cfg.Cells; i++ {
		if _, err := s.addCell(s.ownsFor(i)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// addCell builds and registers the next cell with the given preload
// ownership predicate.
func (s *Cluster) addCell(owns func(table string, key int64) bool) (*Cell, error) {
	id := len(s.cells)
	ccfg := s.cfg.Cell
	ccfg.NamePrefix = fmt.Sprintf("cell%d/", id)
	if s.cfg.PartitionedPreload != nil {
		ccfg.Preload = s.cfg.PartitionedPreload(owns)
	}
	clu, err := cluster.New(s.env, s.cloud, ccfg)
	if err != nil {
		return nil, fmt.Errorf("shard: cell %d: %w", id, err)
	}
	px := proxy.New(s.env, s.cloud.Network(), clu.Master(), s.cfg.ClientPlace, s.cfg.Balancer())
	px.ReadYourWrites = s.cfg.ReadYourWrites
	px.Consistency = s.cfg.Consistency
	px.MaxStaleEvents = s.cfg.MaxStaleEvents
	px.Retry = s.cfg.Retry
	if s.cfg.Retry.FailoverOnMasterDown {
		px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
			return clu.Failover()
		}
	}
	px.CheckOwner = s.checkOwner(id)
	if s.tracer != nil {
		px.Tracer = s.tracer
		clu.SetTracer(s.tracer)
	}
	reg := obs.NewRegistry()
	reg.SetRand(s.env.Rand())
	cell := &Cell{ID: id, Clu: clu, Px: px, Reg: reg}
	s.cells = append(s.cells, cell)
	return cell, nil
}

// ownsFor is the preload ownership predicate of a cell under the current
// map: global and unknown tables load everywhere, sharded rows load only
// into their owning cell.
func (s *Cluster) ownsFor(cellID int) func(table string, key int64) bool {
	return func(table string, key int64) bool {
		if !s.ks.sharded(strings.ToLower(table)) {
			return true
		}
		return s.m.Owner(key) == cellID
	}
}

// ownsNothing is the predicate for a split-created cell: schema and global
// tables only; sharded rows arrive through the split copy.
func ownsNothing(ks Keyspace) func(table string, key int64) bool {
	return func(table string, key int64) bool {
		return !ks.sharded(strings.ToLower(table))
	}
}

// Env returns the simulation environment.
func (s *Cluster) Env() *sim.Env { return s.env }

// Cells returns the cells in id order.
func (s *Cluster) Cells() []*Cell { return s.cells }

// Cell returns cell i.
func (s *Cluster) Cell(i int) *Cell { return s.cells[i] }

// NumCells returns the current cell count.
func (s *Cluster) NumCells() int { return len(s.cells) }

// Map returns the authoritative shard map.
func (s *Cluster) Map() *Map { return s.m }

// Keyspace returns the schema mapping.
func (s *Cluster) Keyspace() Keyspace { return s.ks }

// Stats returns the router counters.
func (s *Cluster) Stats() Stats { return s.stats }

// SingleLatency returns the single-key statement latency histogram.
func (s *Cluster) SingleLatency() *metrics.Histogram { return &s.hSingle }

// ScatterLatency returns the scatter-gather read latency histogram.
func (s *Cluster) ScatterLatency() *metrics.Histogram { return &s.hScatter }

// SetTracer wires tracing through every cell's proxy and replication
// topology.
func (s *Cluster) SetTracer(tr *obs.Tracer) {
	s.tracer = tr
	for _, c := range s.cells {
		c.Px.Tracer = tr
		c.Clu.SetTracer(tr)
	}
}

// route returns the cached routing decision for a statement text.
func (s *Cluster) route(sql string) *routeInfo {
	if ri, ok := s.routes[sql]; ok {
		return ri
	}
	ri := analyze(sql, s.ks)
	s.routes[sql] = ri
	return ri
}

// checkOwner builds a cell proxy's ownership check. It validates against
// the live map (not a snapshot), so a client routing on a stale snapshot
// gets proxy.ErrWrongShard and re-resolves. During a split's cutover
// barrier it also rejects statements on moving keys and scatter legs on
// the source cell, draining the source for the final catch-up.
func (s *Cluster) checkOwner(cellID int) func(sql string, args []sqlengine.Value) error {
	return func(sql string, args []sqlengine.Value) error {
		ri := s.route(sql)
		if ri.err != nil {
			return nil // router surfaces its own error on the client path
		}
		switch ri.kind {
		case routeSingle:
			keys, err := ri.resolveKeys(args)
			if err != nil {
				return nil
			}
			mig := s.mig
			for _, k := range keys {
				if mig != nil && mig.barrier && mig.moving[s.m.SlotOf(k)] {
					return proxy.ErrWrongShard
				}
				if s.m.Owner(k) != cellID {
					return proxy.ErrWrongShard
				}
			}
		case routeScatter:
			if mig := s.mig; mig != nil && mig.barrier && cellID == mig.src {
				return proxy.ErrWrongShard
			}
		}
		return nil
	}
}

// Conn is one routed client connection: a cached map snapshot plus one
// lazily-opened proxy connection per cell. The snapshot refreshes only
// when a cell rejects a statement with proxy.ErrWrongShard, so every
// topology change exercises the typed retry path end to end.
type Conn struct {
	sc    *Cluster
	db    string
	snap  *Snapshot
	conns []*proxy.Conn
	// dualSess caches direct sessions on split-target masters for the
	// dual-write window.
	dualSess map[*server.DBServer]*sqlengine.Session
	anyN     uint64 // round-robin cursor for routeAny
}

// Connect opens a routed connection with the given default database.
func (s *Cluster) Connect(db string) *Conn {
	return &Conn{sc: s, db: db, snap: s.m.Snapshot()}
}

// cellConn returns (opening if needed) the proxy connection to cell id.
func (c *Conn) cellConn(id int) *proxy.Conn {
	for len(c.conns) <= id {
		c.conns = append(c.conns, nil)
	}
	if c.conns[id] == nil {
		c.conns[id] = c.sc.cells[id].Px.Connect(c.db)
	}
	return c.conns[id]
}

// refresh replaces the connection's map snapshot with the live map.
func (c *Conn) refresh() {
	c.snap = c.sc.m.Snapshot()
	c.sc.stats.MapRefreshes++
}

// Route-refresh retry shape: the cutover barrier of a split lasts drain +
// final replay + source cleanup, so the backoff budget (~2.3 s total) must
// comfortably exceed the worst barrier we measure (tens of milliseconds).
const maxRouteRetries = 14

func routeBackoff(attempt int) time.Duration {
	d := 5 * time.Millisecond << uint(attempt)
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// Exec routes and executes one statement. Single-key statements go to the
// owning cell; multi-key reads scatter to every slot-owning cell and merge;
// global writes broadcast. A proxy.ErrWrongShard reply (stale snapshot or
// cutover barrier) refreshes the snapshot and retries with backoff.
func (c *Conn) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*proxy.ExecResult, error) {
	ri := c.sc.route(sql)
	if ri.err != nil {
		c.sc.stats.Errors++
		return nil, ri.err
	}
	start := p.Now()
	var res *proxy.ExecResult
	var err error
	for attempt := 0; ; attempt++ {
		res, err = c.execOnce(p, ri, sql, args)
		if err == nil || !errors.Is(err, proxy.ErrWrongShard) {
			break
		}
		if attempt >= maxRouteRetries {
			break
		}
		c.sc.stats.WrongShardRetries++
		c.refresh()
		p.Sleep(routeBackoff(attempt))
	}
	if err != nil {
		c.sc.stats.Errors++
		return nil, err
	}
	lat := time.Duration(p.Now() - start)
	res.Latency = lat
	if ri.kind == routeScatter {
		c.sc.hScatter.Record(lat)
	} else {
		c.sc.hSingle.Record(lat)
	}
	return res, nil
}

// Query is Exec returning only the result set.
func (c *Conn) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := c.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	if res.Result == nil {
		return nil, nil
	}
	return res.Result.Set, nil
}

// execOnce performs one routing attempt.
func (c *Conn) execOnce(p *sim.Proc, ri *routeInfo, sql string, args []sqlengine.Value) (*proxy.ExecResult, error) {
	// Full-coverage routes (scatter, broadcast) cannot rely on the lazy
	// ErrWrongShard path to expose a stale snapshot: a leg to a cell that
	// shrank is still "owned" statement-by-statement, so a scatter routed
	// on a pre-split snapshot would silently miss the new cell's rows.
	// Validate the snapshot epoch against the authoritative map before
	// fanning out; single-key routes keep the cached snapshot and let the
	// owning cell's ownership check catch staleness.
	if ri.kind == routeScatter || ri.kind == routeBroadcast {
		if c.snap.Version() != c.sc.m.Version() {
			c.refresh()
		}
	}
	switch ri.kind {
	case routeAny:
		c.sc.stats.AnyReads++
		id := int(c.anyN) % len(c.sc.cells)
		c.anyN++
		return c.cellConn(id).Exec(p, sql, args...)
	case routeBroadcast:
		return c.broadcast(p, ri, sql, args)
	case routeScatter:
		return c.scatter(p, ri, sql, args)
	default:
		return c.single(p, ri, sql, args)
	}
}

// single executes on the owning cell per the connection's snapshot, then
// mirrors successful writes on moving keys to the split target.
func (c *Conn) single(p *sim.Proc, ri *routeInfo, sql string, args []sqlengine.Value) (*proxy.ExecResult, error) {
	keys, err := ri.resolveKeys(args)
	if err != nil {
		return nil, err
	}
	owner := c.snap.Owner(keys[0])
	for _, k := range keys[1:] {
		if c.snap.Owner(k) != owner {
			return nil, fmt.Errorf("shard: statement spans cells (keys hash to different owners)")
		}
	}
	c.sc.stats.SingleKey++
	mig, tracked := c.sc.trackKeys(keys)
	res, execErr := c.cellConn(owner).Exec(p, sql, args...)
	if execErr == nil && ri.write {
		c.dualWrite(p, mig, ri, keys, owner, sql, args)
	}
	if tracked {
		mig.leave()
	}
	return res, execErr
}

// dualWrite mirrors a committed write on moving keys to the split target's
// master, inside the client's process so the dual-write latency is paid
// honestly. A duplicate-key reply means the copy already delivered the row;
// any other failure marks the migration failed (the split aborts, the
// source stays authoritative).
func (c *Conn) dualWrite(p *sim.Proc, mig *migration, ri *routeInfo, keys []int64, owner int, sql string, args []sqlengine.Value) {
	if mig == nil || mig.failed || owner != mig.src {
		return
	}
	moving, mixed := mig.covers(c.sc.m, keys)
	if mixed {
		mig.fail(fmt.Errorf("shard: statement mixes moving and non-moving slots during split"))
		return
	}
	if !moving {
		return
	}
	dstSrv := c.sc.cells[mig.dst].Clu.Master().Srv
	if c.dualSess == nil {
		c.dualSess = make(map[*server.DBServer]*sqlengine.Session)
	}
	sess := c.dualSess[dstSrv]
	if sess == nil {
		sess = dstSrv.Session(c.db)
		c.dualSess[dstSrv] = sess
	}
	if _, err := dstSrv.Exec(p, sess, sql, args...); err != nil && !errors.Is(err, sqlengine.ErrDuplicateKey) {
		mig.fail(fmt.Errorf("shard: dual-write to cell %d: %w", mig.dst, err))
		return
	}
	// The dual write bypassed the target cell's proxy, so no session token
	// was minted there. Stamp one by hand: the moment the map flips, this
	// connection's reads on the moved keys route to the target cell, and a
	// read-your-writes read must not be served by a target slave that has
	// not applied the mirrored write yet.
	dstM := c.sc.cells[mig.dst].Clu.Master()
	c.cellConn(mig.dst).SetToken(proxy.Token{Epoch: dstM.Epoch, Seq: dstM.Srv.Log.LastSeq()})
	mig.recordKeys(ri.table, keys)
	mig.dualWrites++
	c.sc.stats.DualWrites++
}

// broadcast runs a statement on every cell in id order (DDL, global-table
// writes). A write broadcast during an active split aborts the split: the
// catch-up replay only repairs single-key writes, so racing a broadcast
// against the copy could strand a stale row on the target.
func (c *Conn) broadcast(p *sim.Proc, ri *routeInfo, sql string, args []sqlengine.Value) (*proxy.ExecResult, error) {
	c.sc.stats.Broadcasts++
	if mig := c.sc.activeMigration(); mig != nil && ri.write {
		mig.fail(fmt.Errorf("shard: broadcast write during split"))
	}
	var last *proxy.ExecResult
	for _, cell := range c.sc.cells {
		res, err := c.cellConn(cell.ID).Exec(p, sql, args...)
		if err != nil {
			return nil, fmt.Errorf("shard: broadcast on cell %d: %w", cell.ID, err)
		}
		last = res
	}
	return last, nil
}

// activeMigration returns the active, not-yet-failed migration, if any.
func (s *Cluster) activeMigration() *migration {
	if s.mig != nil && !s.mig.failed {
		return s.mig
	}
	return nil
}

// trackKeys registers a statement touching moving slots with the active
// migration's in-flight count (the cutover drain waits for it to reach
// zero). Returns the migration and whether leave() must be called.
// Statements arriving during the barrier are not tracked: the ownership
// check rejects them in the same simulation instant, and counting their
// retries as in-flight would let arrivals hold the drain open forever.
func (s *Cluster) trackKeys(keys []int64) (*migration, bool) {
	mig := s.activeMigration()
	if mig == nil || mig.barrier {
		return mig, false
	}
	for _, k := range keys {
		if mig.moving[s.m.SlotOf(k)] {
			mig.enter()
			return mig, true
		}
	}
	return mig, false
}

// scatter fans a multi-key read out to every slot-owning cell, one
// simulation process per leg, and merges the per-cell results in cell
// order. Legs run against the rewritten per-cell statement (ORDER BY
// columns projected, LIMIT pushed down); a single-target scatter
// short-circuits to the original statement.
func (c *Conn) scatter(p *sim.Proc, ri *routeInfo, sql string, args []sqlengine.Value) (*proxy.ExecResult, error) {
	targets := c.snap.Cells()
	mig := c.sc.activeMigration()
	tracked := false
	if mig != nil && !mig.barrier { // barrier arrivals bounce, not drain-tracked
		for _, t := range targets {
			if t == mig.src {
				mig.enter()
				tracked = true
			}
		}
	}
	res, err := c.scatterLegs(p, ri, sql, args, targets)
	if tracked {
		mig.leave()
	}
	return res, err
}

func (c *Conn) scatterLegs(p *sim.Proc, ri *routeInfo, sql string, args []sqlengine.Value, targets []int) (*proxy.ExecResult, error) {
	c.sc.stats.ScatterOps++
	c.sc.stats.ScatterLegs += uint64(len(targets))
	if len(targets) == 1 {
		// Every slot lives on one cell: the original statement is already
		// complete there, no rewrite or merge needed.
		return c.cellConn(targets[0]).Exec(p, sql, args...)
	}
	legSQL := ri.plan.cellSQL
	results := make([]*proxy.ExecResult, len(targets))
	errs := make([]error, len(targets))
	done := 0
	sig := sim.NewSignal(c.sc.env).Named("shard/scatter")
	for i, id := range targets {
		i, id := i, id
		conn := c.cellConn(id)
		c.sc.env.Go("shard/scatter-leg", func(lp *sim.Proc) {
			results[i], errs[i] = conn.Exec(lp, legSQL, args...)
			done++
			sig.Broadcast()
		})
	}
	for done < len(targets) {
		sig.Wait(p)
	}
	var sets []*sqlengine.ResultSet
	var examined, returned int
	for i := range targets {
		if errs[i] != nil {
			// ErrWrongShard on any leg retries the whole scatter after a
			// refresh; other failures surface as the scatter's error.
			return nil, errs[i]
		}
		r := results[i].Result
		if r != nil && r.Set != nil {
			sets = append(sets, r.Set)
			examined += r.Stats.RowsExamined
		}
	}
	merged, err := ri.plan.merge(sets)
	if err != nil {
		return nil, err
	}
	returned = len(merged.Rows)
	out := &sqlengine.Result{Set: merged}
	out.Stats.RowsExamined = examined
	out.Stats.RowsReturned = returned
	return &proxy.ExecResult{Result: out}, nil
}

// PublishMetrics snapshots the router and every cell into reg: top-level
// "shard.*" gauges and counters, per-cell metrics namespaced
// "shard.cell<i>.<component>.<metric>".
func (s *Cluster) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("shard.cells").Set(float64(len(s.cells)))
	reg.Gauge("shard.slots").Set(float64(s.m.NumSlots()))
	reg.Gauge("shard.map_version").Set(float64(s.m.Version()))
	st := s.stats
	reg.Counter("shard.router.single_key").Set(float64(st.SingleKey))
	reg.Counter("shard.router.scatter_ops").Set(float64(st.ScatterOps))
	reg.Counter("shard.router.scatter_legs").Set(float64(st.ScatterLegs))
	reg.Counter("shard.router.broadcasts").Set(float64(st.Broadcasts))
	reg.Counter("shard.router.any_reads").Set(float64(st.AnyReads))
	reg.Counter("shard.router.wrong_shard_retries").Set(float64(st.WrongShardRetries))
	reg.Counter("shard.router.map_refreshes").Set(float64(st.MapRefreshes))
	reg.Counter("shard.router.dual_writes").Set(float64(st.DualWrites))
	reg.Counter("shard.router.splits").Set(float64(st.Splits))
	reg.Counter("shard.router.split_aborts").Set(float64(st.SplitAborts))
	reg.Counter("shard.router.moved_rows").Set(float64(st.MovedRows))
	reg.Counter("shard.router.replayed_entries").Set(float64(st.ReplayedEntries))
	reg.Counter("shard.router.errors").Set(float64(st.Errors))
	publishHist(reg, "shard.latency.single", &s.hSingle)
	publishHist(reg, "shard.latency.scatter", &s.hScatter)
	for _, cell := range s.cells {
		cell.Px.PublishMetrics(cell.Reg)
		cell.Clu.Master().PublishMetrics(cell.Reg)
		cell.Reg.MergeInto(reg, fmt.Sprintf("shard.cell%d.", cell.ID))
	}
}

// publishHist exposes a histogram the router owns (p99 included — tail
// latency of scatters is a headline shard metric) as gauges.
func publishHist(reg *obs.Registry, name string, h *metrics.Histogram) {
	sum := h.Summary()
	reg.Gauge(name + ".count").Set(float64(h.Total()))
	reg.Gauge(name + ".mean_ms").Set(sum.Mean)
	reg.Gauge(name + ".p95_ms").Set(sum.P95)
	reg.Gauge(name + ".p99_ms").Set(float64(h.Percentile(0.99)) / float64(time.Millisecond))
	reg.Gauge(name + ".max_ms").Set(sum.Max)
}

// CellThroughput distributes served statements per cell: reads+writes seen
// by each cell proxy. Useful for per-cell throughput reporting.
func (s *Cluster) CellThroughput() []uint64 {
	out := make([]uint64, len(s.cells))
	for i, c := range s.cells {
		ps := c.Px.Stats()
		out[i] = ps.Reads + ps.Writes
	}
	return out
}

// RowCount scans every cell's master for the total row count of a sharded
// table (free reads — validation only, no simulated cost). Each row is
// counted once per owning cell; duplicates across cells inflate the total,
// lost rows deflate it, which is exactly what the split chaos test checks.
func (s *Cluster) RowCount(table string) (int, error) {
	total := 0
	for _, cell := range s.cells {
		srv := cell.Clu.Master().Srv
		sess := srv.Session(s.cfg.Database)
		res, err := srv.ExecFree(sess, "SELECT COUNT(*) AS n FROM "+table)
		if err != nil {
			return 0, fmt.Errorf("shard: count %s on cell %d: %w", table, cell.ID, err)
		}
		if res.Set != nil && len(res.Set.Rows) == 1 {
			total += int(res.Set.Rows[0][0].Int())
		}
	}
	return total, nil
}

// Keys scans every cell's master and returns each cell's key set for a
// sharded table (free reads — validation only).
func (s *Cluster) Keys(table string) ([]map[int64]int, error) {
	kc, ok := s.ks.keyColumn(strings.ToLower(table))
	if !ok {
		return nil, fmt.Errorf("shard: %s is not sharded", table)
	}
	out := make([]map[int64]int, len(s.cells))
	for i, cell := range s.cells {
		srv := cell.Clu.Master().Srv
		sess := srv.Session(s.cfg.Database)
		res, err := srv.ExecFree(sess, fmt.Sprintf("SELECT %s FROM %s", kc, table))
		if err != nil {
			return nil, fmt.Errorf("shard: scan %s on cell %d: %w", table, cell.ID, err)
		}
		m := make(map[int64]int)
		if res.Set != nil {
			for _, r := range res.Set.Rows {
				m[r[0].Int()]++
			}
		}
		out[i] = m
	}
	return out, nil
}

// sortedKeys returns a deterministic ordering of a key set.
func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
