package shard

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// Split protocol. A slot range moves from a source cell to a target with
// writes flowing throughout, except for one short cutover barrier:
//
//  1. Dual-write on. Every client write on a moving key commits on the
//     source, then mirrors to the target's master (duplicate-key replies
//     are benign — the copy may have delivered the row first).
//  2. Copy. The source master is scanned table by table; rows whose key
//     hashes into a moving slot are inserted on the target.
//  3. Catch-up. The source binlog from the pre-copy position is replayed
//     onto the target (moving-key single statements only) until the
//     backlog is small. Replay repairs the dual-write/copy race: an UPDATE
//     that dual-applied before its row was copied touched zero target
//     rows, and the copy then delivered the pre-update image — replaying
//     the full binlog order re-executes the UPDATE on the copied row.
//  4. Barrier. New statements on moving keys (and scatter legs on the
//     source) are rejected with proxy.ErrWrongShard — clients retry with
//     backoff. In-flight statements drain; the final binlog gap replays;
//     moved rows are deleted from the source (and the deletes propagate to
//     the source's slaves so scatter reads can't resurface them); then the
//     map flips ownership and the barrier lifts. The observable write
//     unavailability on moving keys is exactly this window, reported as
//     SplitReport.Downtime.
//
// If the target dies (or its master fails over, or a broadcast write races
// the copy) the split aborts: dual-writes stop, the map never changed, the
// source remains the complete authoritative owner — no rows lost; the
// target never became routable — no rows duplicated.
//
// catchupMaxLag is the backlog (binlog entries) below which the splitter
// stops chasing and enters the barrier.
const catchupMaxLag = 16

// deleteChunk bounds the IN-list of each source cleanup DELETE.
const deleteChunk = 128

// migration is the mutable state of one in-progress split, shared with the
// router (dual-write, inflight tracking, barrier checks).
type migration struct {
	src, dst int
	moving   map[int]bool // slots in motion
	barrier  bool
	inflight int
	drained  *sim.Signal
	// keys accumulates every moved shard key per table (copy scan plus
	// dual-writes) — the source-cleanup delete list.
	keys       map[string]map[int64]bool
	dualWrites int
	failed     bool
	failErr    error
}

func (m *migration) enter() { m.inflight++ }

func (m *migration) leave() {
	m.inflight--
	if m.inflight == 0 {
		m.drained.Broadcast()
	}
}

func (m *migration) fail(err error) {
	if !m.failed {
		m.failed = true
		m.failErr = err
	}
}

// covers reports whether keys fall in moving slots: all of them, or a mix
// of moving and non-moving (which the protocol cannot mirror atomically).
func (m *migration) covers(mp *Map, keys []int64) (all bool, mixed bool) {
	in := 0
	for _, k := range keys {
		if m.moving[mp.SlotOf(k)] {
			in++
		}
	}
	return in == len(keys) && in > 0, in > 0 && in < len(keys)
}

func (m *migration) recordKeys(table string, keys []int64) {
	set := m.keys[table]
	if set == nil {
		set = make(map[int64]bool)
		m.keys[table] = set
	}
	for _, k := range keys {
		set[k] = true
	}
}

// SplitReport describes one split/rebalance attempt.
type SplitReport struct {
	Src            int           `json:"src"`
	Dst            int           `json:"dst"`
	Slots          []int         `json:"slots,omitempty"`
	MovedRows      int           `json:"moved_rows"`
	CatchupEntries int           `json:"catchup_entries"`
	DualWrites     int           `json:"dual_writes"`
	CopyDuration   time.Duration `json:"copy_duration_us"`
	Downtime       time.Duration `json:"downtime_us"`
	Aborted        bool          `json:"aborted,omitempty"`
	Err            string        `json:"err,omitempty"`
}

// Split grows the cluster by one cell online: it builds a fresh cell
// (schema and global tables only) and migrates half of the fullest cell's
// slots onto it. The new cell only becomes routable at cutover, so an
// abort can never leak a partial copy into query results.
func (s *Cluster) Split(p *sim.Proc) (*SplitReport, error) {
	if len(s.cells) >= s.m.NumSlots() {
		return nil, fmt.Errorf("shard: cannot split past %d cells (%d slots)", len(s.cells), s.m.NumSlots())
	}
	if s.mig != nil {
		return nil, fmt.Errorf("shard: a split is already in progress")
	}
	src := 0
	most := -1
	for id := range s.cells {
		if n := len(s.m.SlotsOwnedBy(id)); n > most {
			most, src = n, id
		}
	}
	owned := s.m.SlotsOwnedBy(src)
	if len(owned) < 2 {
		return nil, fmt.Errorf("shard: cell %d owns %d slot(s), nothing to split", src, len(owned))
	}
	dstCell, err := s.addCell(ownsNothing(s.ks))
	if err != nil {
		return nil, err
	}
	moving := owned[len(owned)/2:] // upper half keeps ranges contiguous
	rep, err := s.migrate(p, src, dstCell.ID, moving)
	if rep != nil && rep.Aborted && dstCell.ID == len(s.cells)-1 {
		// The fresh cell never owned a slot; retire it from routing so a
		// dead target doesn't linger in broadcast/any fan-outs.
		s.cells = s.cells[:len(s.cells)-1]
	}
	return rep, err
}

// Rebalance moves an explicit slot set between two existing cells with the
// same protocol. Unlike Split, an aborted rebalance may leave already
// copied rows on the (still healthy, still non-owning) target; they are
// invisible to routing and overwritten by a later retry.
func (s *Cluster) Rebalance(p *sim.Proc, src, dst int, slots []int) (*SplitReport, error) {
	if s.mig != nil {
		return nil, fmt.Errorf("shard: a split is already in progress")
	}
	if src == dst || src < 0 || dst < 0 || src >= len(s.cells) || dst >= len(s.cells) {
		return nil, fmt.Errorf("shard: bad rebalance %d -> %d", src, dst)
	}
	for _, sl := range slots {
		if s.m.SlotOwner(sl) != src {
			return nil, fmt.Errorf("shard: slot %d not owned by cell %d", sl, src)
		}
	}
	return s.migrate(p, src, dst, slots)
}

// migrate runs the copy-then-cutover protocol on the calling process.
func (s *Cluster) migrate(p *sim.Proc, src, dst int, slots []int) (*SplitReport, error) {
	rep := &SplitReport{Src: src, Dst: dst, Slots: append([]int(nil), slots...)}
	srcM := s.cells[src].Clu.Master()
	dstM := s.cells[dst].Clu.Master()
	mig := &migration{
		src:     src,
		dst:     dst,
		moving:  make(map[int]bool, len(slots)),
		drained: sim.NewSignal(s.env).Named(fmt.Sprintf("shard/split%d-drain", dst)),
		keys:    make(map[string]map[int64]bool),
	}
	for _, sl := range slots {
		mig.moving[sl] = true
	}

	// Phase 1+2: record the replay floor, open the dual-write window, copy.
	seq0 := srcM.Srv.Log.LastSeq()
	s.mig = mig
	copyStart := p.Now()
	moved, err := s.copyMoving(p, mig, srcM, dstM)
	rep.MovedRows = moved
	s.stats.MovedRows += uint64(moved)
	if err == nil {
		err = s.checkSplitHealth(mig, srcM, dstM)
	}
	rep.CopyDuration = time.Duration(p.Now() - copyStart)
	if err != nil {
		return s.abort(rep, mig, err)
	}

	// Phase 3: chase the binlog until the backlog is short.
	pos := seq0
	for {
		last := srcM.Srv.Log.LastSeq()
		n, rerr := s.replayRange(p, mig, srcM, dstM, pos, last)
		rep.CatchupEntries += n
		pos = last
		if rerr == nil {
			rerr = s.checkSplitHealth(mig, srcM, dstM)
		}
		if rerr != nil {
			return s.abort(rep, mig, rerr)
		}
		if srcM.Srv.Log.LastSeq()-pos <= catchupMaxLag {
			break
		}
	}
	// Chase the source slaves down to a bounded apply lag before the
	// barrier closes: the in-barrier cleanup wait then covers only the
	// barrier window's own entries (the bounded lag, the final replay gap
	// and the cleanup deletes), so the observable downtime stays decoupled
	// from whatever apply backlog the slaves accumulated during the copy.
	// A tier whose slaves structurally cannot keep up never converges here
	// and the split aborts at the deadline instead of freezing writes.
	if err := s.waitSrcLag(p, srcM, catchupMaxLag, 30*time.Second); err != nil {
		return s.abort(rep, mig, err)
	}
	if err := s.checkSplitHealth(mig, srcM, dstM); err != nil {
		return s.abort(rep, mig, err)
	}

	// Phase 4: barrier — drain, final replay, source cleanup, flip.
	mig.barrier = true
	barrierStart := p.Now()
	for mig.inflight > 0 {
		mig.drained.Wait(p)
	}
	last := srcM.Srv.Log.LastSeq()
	n, err := s.replayRange(p, mig, srcM, dstM, pos, last)
	rep.CatchupEntries += n
	if err == nil {
		err = s.checkSplitHealth(mig, srcM, dstM)
	}
	if err != nil {
		return s.abort(rep, mig, err)
	}
	if err := s.cleanupSource(p, mig, srcM); err != nil {
		return s.abort(rep, mig, err)
	}
	s.m.Move(slots, dst)
	mig.barrier = false
	s.mig = nil
	rep.Downtime = time.Duration(p.Now() - barrierStart)
	rep.DualWrites = mig.dualWrites
	s.stats.Splits++
	return rep, nil
}

// abort tears the migration down with the map untouched: the source stays
// the complete owner of every moving slot.
func (s *Cluster) abort(rep *SplitReport, mig *migration, err error) (*SplitReport, error) {
	mig.fail(err)
	mig.barrier = false
	s.mig = nil
	s.stats.SplitAborts++
	rep.Aborted = true
	rep.Err = mig.failErr.Error()
	rep.DualWrites = mig.dualWrites
	return rep, nil
}

// checkSplitHealth detects conditions that force an abort: a failed
// dual-write, a dead target master, or either endpoint failing over (the
// captured master pointer no longer leads its cell).
func (s *Cluster) checkSplitHealth(mig *migration, srcM, dstM *repl.Master) error {
	if mig.failed {
		return mig.failErr
	}
	if !dstM.Srv.Up() {
		return fmt.Errorf("shard: split target cell %d master is down", mig.dst)
	}
	if s.cells[mig.src].Clu.Master() != srcM {
		return fmt.Errorf("shard: source cell %d failed over during split", mig.src)
	}
	if s.cells[mig.dst].Clu.Master() != dstM {
		return fmt.Errorf("shard: target cell %d failed over during split", mig.dst)
	}
	return nil
}

// copyMoving scans each sharded table on the source master and inserts the
// rows of moving slots on the target. Both sides pay real statement cost
// (the scan loads the source master like a logical dump). Duplicate keys on
// the target mean a dual-write won the race — benign.
func (s *Cluster) copyMoving(p *sim.Proc, mig *migration, srcM, dstM *repl.Master) (int, error) {
	moved := 0
	srcSess := srcM.Srv.Session(s.cfg.Database)
	dstSess := dstM.Srv.Session(s.cfg.Database)
	for _, table := range s.ks.shardedTables() {
		kc, _ := s.ks.keyColumn(table)
		res, err := srcM.Srv.Exec(p, srcSess, "SELECT * FROM "+table)
		if err != nil {
			return moved, fmt.Errorf("shard: split scan %s: %w", table, err)
		}
		if res.Set == nil {
			continue
		}
		kidx := -1
		for i, col := range res.Set.Columns {
			if strings.EqualFold(col, kc) {
				kidx = i
			}
		}
		if kidx < 0 {
			return moved, fmt.Errorf("shard: table %s has no column %s", table, kc)
		}
		insert := insertTemplate(table, res.Set.Columns)
		for _, row := range res.Set.Rows {
			key := row[kidx].Int()
			if !mig.moving[s.m.SlotOf(key)] {
				continue
			}
			if _, err := dstM.Srv.Exec(p, dstSess, insert, row...); err != nil {
				if errors.Is(err, sqlengine.ErrDuplicateKey) {
					mig.recordKeys(table, []int64{key})
					continue
				}
				return moved, fmt.Errorf("shard: split insert %s: %w", table, err)
			}
			mig.recordKeys(table, []int64{key})
			moved++
			if moved%64 == 0 {
				if err := s.checkSplitHealth(mig, srcM, dstM); err != nil {
					return moved, err
				}
			}
		}
	}
	return moved, nil
}

// insertTemplate builds the parameterized INSERT for one copied row.
func insertTemplate(table string, cols []string) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" (")
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(") VALUES (")
	for i := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("?")
	}
	b.WriteString(")")
	return b.String()
}

// replayRange re-executes source binlog entries (lo, hi] on the target:
// single-key writes of the application database whose key is moving.
// Statement-based replay in full binlog order repairs every
// dual-write/copy interleaving; duplicate-key replies (the row arrived by
// copy or dual-write) are benign.
func (s *Cluster) replayRange(p *sim.Proc, mig *migration, srcM, dstM *repl.Master, lo, hi uint64) (int, error) {
	if hi <= lo {
		return 0, nil
	}
	dstSess := dstM.Srv.Session(s.cfg.Database)
	replayed := 0
	for seq := lo + 1; seq <= hi; seq++ {
		e, err := srcM.Srv.Log.At(seq)
		if err != nil {
			return replayed, fmt.Errorf("shard: split replay read seq %d: %w", seq, err)
		}
		if e.Database != s.cfg.Database {
			continue
		}
		// Replay routes on the interpolated statement text; it is not
		// cached (dump text is unbounded, unlike the client template set).
		ri := analyze(e.SQL, s.ks)
		if ri.kind != routeSingle || !ri.write {
			continue
		}
		keys, kerr := ri.resolveKeys(nil)
		if kerr != nil {
			continue
		}
		all, mixed := mig.covers(s.m, keys)
		if mixed {
			return replayed, fmt.Errorf("shard: replayed statement mixes moving and non-moving slots")
		}
		if !all {
			continue
		}
		if _, err := dstM.Srv.Exec(p, dstSess, e.SQL); err != nil && !errors.Is(err, sqlengine.ErrDuplicateKey) {
			return replayed, fmt.Errorf("shard: split replay seq %d: %w", seq, err)
		}
		mig.recordKeys(ri.table, keys)
		replayed++
		s.stats.ReplayedEntries++
	}
	return replayed, nil
}

// cleanupSource deletes every moved row from the source master (chunked
// IN-list deletes, replicated to the source's slaves through the normal
// binlog path) and waits for the source slaves to apply them, so a scatter
// read after the flip cannot resurface a moved row from a lagging replica.
func (s *Cluster) cleanupSource(p *sim.Proc, mig *migration, srcM *repl.Master) error {
	sess := srcM.Srv.Session(s.cfg.Database)
	for _, table := range s.ks.shardedTables() {
		set := mig.keys[table]
		if len(set) == 0 {
			continue
		}
		kc, _ := s.ks.keyColumn(table)
		keys := sortedKeys(set)
		for off := 0; off < len(keys); off += deleteChunk {
			end := off + deleteChunk
			if end > len(keys) {
				end = len(keys)
			}
			var b strings.Builder
			b.WriteString("DELETE FROM ")
			b.WriteString(table)
			b.WriteString(" WHERE ")
			b.WriteString(kc)
			b.WriteString(" IN (")
			for i, k := range keys[off:end] {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(strconv.FormatInt(k, 10))
			}
			b.WriteString(")")
			if _, err := srcM.Srv.Exec(p, sess, b.String()); err != nil {
				return fmt.Errorf("shard: split cleanup %s: %w", table, err)
			}
		}
	}
	// Let the deletes reach every live source slave before reads resume.
	return s.waitSrcApplied(p, srcM, srcM.Srv.Log.LastSeq(), 5*time.Second)
}

// waitSrcApplied blocks until every live source slave has applied the
// source binlog through target, or fails at the deadline.
func (s *Cluster) waitSrcApplied(p *sim.Proc, srcM *repl.Master, target uint64, timeout time.Duration) error {
	deadline := p.Now() + sim.Time(timeout)
	for {
		lagging := false
		for _, sl := range srcM.Slaves() {
			if sl.Srv.Up() && sl.AppliedSeq() < target {
				lagging = true
			}
		}
		if !lagging {
			return nil
		}
		if p.Now() >= deadline {
			return fmt.Errorf("shard: source slaves did not apply the split backlog in time")
		}
		p.Sleep(2 * time.Millisecond)
	}
}

// waitSrcLag blocks until every live source slave is within maxLag entries
// of the source master's moving binlog tail, or fails at the deadline.
func (s *Cluster) waitSrcLag(p *sim.Proc, srcM *repl.Master, maxLag uint64, timeout time.Duration) error {
	deadline := p.Now() + sim.Time(timeout)
	for {
		tail := srcM.Srv.Log.LastSeq()
		lagging := false
		for _, sl := range srcM.Slaves() {
			if sl.Srv.Up() && sl.AppliedSeq()+maxLag < tail {
				lagging = true
			}
		}
		if !lagging {
			return nil
		}
		if p.Now() >= deadline {
			lags := []uint64{}
			for _, sl := range srcM.Slaves() {
				lags = append(lags, tail-sl.AppliedSeq())
			}
			return fmt.Errorf("shard: source slaves cannot keep up (tail %d, lags %v); refusing to extend the cutover barrier", tail, lags)
		}
		p.Sleep(2 * time.Millisecond)
	}
}
