// Package cluster assembles an application-managed replicated database
// tier: a master and N slave DBServers on cloud instances, wired with
// statement-based replication, plus elasticity (add/remove slaves at
// runtime) and master failover by slave promotion.
//
// This is the deployment unit of the paper: MySQL instances on m1.small
// VMs, one per replica, managed entirely by the application.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// NodeSpec places one database node.
type NodeSpec struct {
	Place cloud.Placement
	Type  cloud.InstanceType
}

// Config describes a cluster.
type Config struct {
	// Mode is the replication synchronization model.
	Mode repl.Mode
	// Cost is the statement cost model for every node.
	Cost server.CostModel
	// Master places the master node.
	Master NodeSpec
	// Slaves places the initial replicas.
	Slaves []NodeSpec
	// Preload initializes a node's schema and data before it joins; it
	// runs identically on the master and on every slave (the paper starts
	// every run "with a pre-loaded, fully-synchronized database").
	Preload func(srv *server.DBServer) error
	// PriorityApply runs every slave's SQL thread at high CPU priority
	// (see server.DBServer.PriorityApply).
	PriorityApply bool
	// ProvisionTime is how long ProvisionSlave's snapshot transfer and
	// restore take on the virtual timeline (default 30 s — roughly a
	// mysqldump of the paper's data set over a zone-local link plus the VM
	// boot). Writes committed during this window become the new replica's
	// catch-up backlog.
	ProvisionTime time.Duration
	// Pipeline configures the replication data path: master group commit,
	// batched binlog shipping, and parallel slave apply. The zero value is
	// the classic one-statement-at-a-time path.
	Pipeline repl.PipelineConfig
	// NaivePlan forces every node's SQL engine to the naive (pre-planner
	// parity) query planner: syntax-order joins, no predicate pushdown, no
	// cost-based join-algorithm choice. The A-PLAN ablation sets it to
	// measure how much the cost-based planner buys in end-to-end ops/s.
	NaivePlan bool
	// NamePrefix prepends every instance name this cluster creates
	// ("master", "slave1", ...). A sharded deployment runs one Cluster per
	// cell and sets a per-cell prefix ("cell0/", "cell1/", ...) so instance
	// names — and everything keyed by them: chaos targets, trace spans,
	// vclock daemons, metric labels — stay unique across cells. Empty keeps
	// the classic single-cluster names.
	NamePrefix string
}

// Cluster is the running database tier.
type Cluster struct {
	env   *sim.Env
	cloud *cloud.Cloud
	cfg   Config

	master *repl.Master
	slaves []*repl.Slave
	tracer *obs.Tracer
	// basePos is the master binlog position right after preload; late
	// slaves preload the same snapshot and attach here.
	basePos uint64
	nextID  int
}

// New builds and starts the cluster.
func New(env *sim.Env, cl *cloud.Cloud, cfg Config) (*Cluster, error) {
	if cfg.Master.Type.Name == "" {
		cfg.Master.Type = cloud.Small
	}
	c := &Cluster{env: env, cloud: cl, cfg: cfg}
	mName := cfg.NamePrefix + "master"
	mInst := cl.Launch(mName, cfg.Master.Type, cfg.Master.Place)
	mSrv := server.New(env, mName, mInst, cfg.Cost)
	mSrv.Eng.NaivePlan = cfg.NaivePlan
	if cfg.Preload != nil {
		if err := cfg.Preload(mSrv); err != nil {
			return nil, fmt.Errorf("cluster: preload master: %w", err)
		}
	}
	mSrv.GroupCommitWindow = cfg.Pipeline.GroupCommitWindow
	c.master = repl.NewMaster(env, mSrv, cl.Network(), cfg.Mode)
	c.master.Pipeline = cfg.Pipeline
	c.basePos = mSrv.Log.LastSeq()
	for _, spec := range cfg.Slaves {
		if _, err := c.AddSlave(spec); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Cloud returns the provider.
func (c *Cluster) Cloud() *cloud.Cloud { return c.cloud }

// Master returns the current replication master.
func (c *Cluster) Master() *repl.Master { return c.master }

// SetTracer wires tr into the whole replication topology — the master, its
// server and every slave's server — and keeps it wired across AddSlave,
// provisioning and Failover. core.WithTracer calls this at Open; nil turns
// tracing off.
func (c *Cluster) SetTracer(tr *obs.Tracer) {
	c.tracer = tr
	c.master.SetTracer(tr)
}

// Slaves returns the attached replicas.
func (c *Cluster) Slaves() []*repl.Slave { return c.master.Slaves() }

// AddSlave launches, preloads and attaches a new replica. The new node
// replays every write committed after the preload snapshot, in order.
func (c *Cluster) AddSlave(spec NodeSpec) (*repl.Slave, error) {
	if spec.Type.Name == "" {
		spec.Type = cloud.Small
	}
	c.nextID++
	name := fmt.Sprintf("%sslave%d", c.cfg.NamePrefix, c.nextID)
	inst := c.cloud.Launch(name, spec.Type, spec.Place)
	srv := server.New(c.env, name, inst, c.cfg.Cost)
	srv.Eng.NaivePlan = c.cfg.NaivePlan
	srv.PriorityApply = c.cfg.PriorityApply
	srv.Tracer = c.tracer
	if c.cfg.Preload != nil {
		if err := c.cfg.Preload(srv); err != nil {
			return nil, fmt.Errorf("cluster: preload %s: %w", name, err)
		}
	}
	sl := repl.NewSlave(c.env, srv)
	c.master.Attach(sl, c.basePos)
	c.slaves = append(c.slaves, sl)
	return sl, nil
}

// RemoveSlave detaches a replica and terminates its instance.
func (c *Cluster) RemoveSlave(sl *repl.Slave) {
	c.master.Detach(sl)
	sl.Srv.Inst.Terminate()
}

// ErrNoPromotable is returned by Failover when no live slave exists.
var ErrNoPromotable = errors.New("cluster: no live slave to promote")

// Failover promotes the most-up-to-date live slave to master after a master
// failure: its replication threads stop, a new Master wraps its server, and
// the remaining slaves re-attach at their applied positions (entries they
// already have are not replayed; entries the promoted slave never received
// are lost, the documented risk of asynchronous replication).
func (c *Cluster) Failover() (*repl.Master, error) {
	var best *repl.Slave
	for _, sl := range c.master.Slaves() {
		if !sl.Srv.Up() {
			continue
		}
		if best == nil || sl.AppliedSeq() > best.AppliedSeq() {
			best = sl
		}
	}
	if best == nil {
		return nil, ErrNoPromotable
	}
	rest := make([]*repl.Slave, 0, len(c.master.Slaves())-1)
	for _, sl := range c.master.Slaves() {
		if sl != best {
			rest = append(rest, sl)
		}
		c.master.Detach(sl)
	}
	// The promoted server's binlog mirrors the old master's (same preload,
	// same applied statements in order, log-slave-updates style), so the
	// old sequence numbering remains valid for re-attachment.
	best.Srv.GroupCommitWindow = c.cfg.Pipeline.GroupCommitWindow
	newMaster := repl.NewMaster(c.env, best.Srv, c.cloud.Network(), c.cfg.Mode)
	// New reign, new epoch: session-consistency tokens minted under the old
	// master carry its epoch and cannot be compared against the promoted
	// master's sequence numbering (writes past the promoted log are lost).
	newMaster.Epoch = c.master.Epoch + 1
	newMaster.Pipeline = c.cfg.Pipeline
	newMaster.SetTracer(c.tracer)
	c.master = newMaster
	c.slaves = nil
	for _, old := range rest {
		if !old.Srv.Up() {
			continue
		}
		pos := old.AppliedSeq()
		if last := best.Srv.Log.LastSeq(); pos > last {
			pos = last // writes beyond the promoted log are lost
		}
		sl := repl.NewSlave(c.env, old.Srv)
		newMaster.Attach(sl, pos)
		c.slaves = append(c.slaves, sl)
	}
	return newMaster, nil
}

// AddSlaveFromMaster provisions a replica from a live snapshot of the
// master (the mysqldump/xtrabackup flow) instead of re-running the
// deterministic preload: the new node restores the master's current state
// and attaches at exactly the binlog position the snapshot captured, so no
// history needs replaying and no write is applied twice. The transfer is
// instantaneous on the virtual timeline; use ProvisionSlave from a
// simulation process for the realistic snapshot + catch-up flow.
func (c *Cluster) AddSlaveFromMaster(spec NodeSpec) (*repl.Slave, error) {
	srv, pos, err := c.snapshotProvision(spec)
	if err != nil {
		return nil, err
	}
	return c.attachProvisioned(srv, pos), nil
}

// ProvisionSlave is AddSlaveFromMaster with the cost the paper's operators
// actually pay: the snapshot is captured at the current binlog position,
// then Config.ProvisionTime elapses for transfer + restore + boot, and only
// then does the replica attach and start replicating. Every write committed
// during that window is its catch-up backlog, so a freshly provisioned
// slave comes up stale and converges — the reason elastic scale-out needs a
// warm-up gate before the proxy may route reads to it. Must be called from
// a simulation process.
func (c *Cluster) ProvisionSlave(p *sim.Proc, spec NodeSpec) (*repl.Slave, error) {
	srv, pos, err := c.snapshotProvision(spec)
	if err != nil {
		return nil, err
	}
	d := c.cfg.ProvisionTime
	if d <= 0 {
		d = 30 * time.Second
	}
	p.Sleep(d)
	return c.attachProvisioned(srv, pos), nil
}

// snapshotProvision launches a node and restores the master's state onto
// it, returning the server and the binlog position the snapshot captured
// (consistent by construction: both are taken at the same virtual instant).
func (c *Cluster) snapshotProvision(spec NodeSpec) (*server.DBServer, uint64, error) {
	if spec.Type.Name == "" {
		spec.Type = cloud.Small
	}
	c.nextID++
	name := fmt.Sprintf("%sslave%d", c.cfg.NamePrefix, c.nextID)
	inst := c.cloud.Launch(name, spec.Type, spec.Place)
	srv := server.New(c.env, name, inst, c.cfg.Cost)
	srv.Eng.NaivePlan = c.cfg.NaivePlan
	srv.PriorityApply = c.cfg.PriorityApply
	srv.Tracer = c.tracer
	// Pin the master's commit version at the recorded binlog position, then
	// materialize: a non-quiescent versioned read — concurrent writers keep
	// committing, chain GC holds the pinned images until Close.
	pos := c.master.Srv.Log.LastSeq()
	h := c.master.Srv.Eng.Pin()
	defer h.Close()
	if err := srv.Eng.Restore(h.Materialize()); err != nil {
		return nil, 0, fmt.Errorf("cluster: provision %s: %w", name, err)
	}
	return srv, pos, nil
}

// attachProvisioned wires a restored server into the replication topology
// at its snapshot position.
func (c *Cluster) attachProvisioned(srv *server.DBServer, pos uint64) *repl.Slave {
	sl := repl.NewSlave(c.env, srv)
	c.master.Attach(sl, pos)
	c.slaves = append(c.slaves, sl)
	return sl
}
