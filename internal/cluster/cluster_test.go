package cluster

import (
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func preloadApp(rows int) func(*server.DBServer) error {
	return func(srv *server.DBServer) error {
		sess := srv.Session("")
		stmts := []string{
			"CREATE DATABASE app",
			"USE app",
			"CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
		}
		for _, sql := range stmts {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				return err
			}
		}
		for i := 0; i < rows; i++ {
			if _, err := srv.ExecFree(sess, "INSERT INTO t (id, v) VALUES (?, 'seed')",
				sqlengine.NewInt(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}
}

func newCluster(t *testing.T, seed int64, nSlaves, seedRows int, mode repl.Mode) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	specs := make([]NodeSpec, nSlaves)
	for i := range specs {
		specs[i] = NodeSpec{Place: place}
	}
	clu, err := New(env, c, Config{
		Mode:    mode,
		Cost:    server.DefaultCostModel(),
		Master:  NodeSpec{Place: place},
		Slaves:  specs,
		Preload: preloadApp(seedRows),
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, clu
}

func count(t *testing.T, srv *server.DBServer) int64 {
	t.Helper()
	set, err := srv.Session("app").Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	return set.Rows[0][0].Int()
}

func write(env *sim.Env, clu *Cluster, id int) {
	sess := clu.Master().Srv.Session("app")
	env.Go("writer", func(p *sim.Proc) {
		clu.Master().Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'live')",
			sqlengine.NewInt(int64(id)))
	})
}

func TestClusterStartsFullySynchronized(t *testing.T) {
	env, clu := newCluster(t, 1, 3, 10, repl.Async)
	env.RunUntil(time.Second)
	if len(clu.Slaves()) != 3 {
		t.Fatalf("slaves = %d", len(clu.Slaves()))
	}
	for _, sl := range clu.Slaves() {
		if n := count(t, sl.Srv); n != 10 {
			t.Fatalf("slave preloaded %d rows, want 10", n)
		}
		if sl.EventsBehindMaster() != 0 {
			t.Fatal("fresh slave reports lag")
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestWritesReplicateToAllSlaves(t *testing.T) {
	env, clu := newCluster(t, 2, 2, 5, repl.Async)
	write(env, clu, 100)
	write(env, clu, 101)
	env.RunUntil(time.Minute)
	for _, sl := range clu.Slaves() {
		if n := count(t, sl.Srv); n != 7 {
			t.Fatalf("slave has %d rows, want 7", n)
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestAddSlaveMidRunCatchesUp(t *testing.T) {
	env, clu := newCluster(t, 3, 1, 5, repl.Async)
	write(env, clu, 100)
	env.RunUntil(10 * time.Second)
	sl, err := clu.AddSlave(NodeSpec{Place: cloud.Placement{Region: cloud.USWest1, Zone: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	write(env, clu, 101)
	env.RunUntil(time.Minute)
	if n := count(t, sl.Srv); n != 7 {
		t.Fatalf("late slave has %d rows, want 7 (5 preload + 2 replayed writes)", n)
	}
	if sl.ApplyErrors() != 0 {
		t.Fatalf("late slave apply errors: %d", sl.ApplyErrors())
	}
	env.Stop()
	env.Shutdown()
}

func TestRemoveSlave(t *testing.T) {
	env, clu := newCluster(t, 4, 2, 0, repl.Async)
	victim := clu.Slaves()[0]
	clu.RemoveSlave(victim)
	if len(clu.Slaves()) != 1 {
		t.Fatalf("slaves after removal: %d", len(clu.Slaves()))
	}
	if victim.Srv.Inst.Up() {
		t.Fatal("removed slave's instance still up")
	}
	write(env, clu, 1)
	env.RunUntil(time.Minute)
	if n := count(t, clu.Slaves()[0].Srv); n != 1 {
		t.Fatalf("survivor has %d rows", n)
	}
	env.Stop()
	env.Shutdown()
}

func TestFailoverPromotesMostUpToDate(t *testing.T) {
	env, clu := newCluster(t, 5, 3, 5, repl.Async)
	for i := 0; i < 10; i++ {
		write(env, clu, 100+i)
	}
	env.RunUntil(30 * time.Second)
	oldMaster := clu.Master()
	oldMaster.Srv.Inst.Terminate()
	promoted, err := clu.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Srv == oldMaster.Srv {
		t.Fatal("failover returned the dead master")
	}
	if len(clu.Slaves()) != 2 {
		t.Fatalf("slaves after failover: %d", len(clu.Slaves()))
	}
	// Cluster accepts writes again and replicates them to the survivors.
	write(env, clu, 999)
	env.RunUntil(2 * time.Minute)
	if n := count(t, promoted.Srv); n != 16 {
		t.Fatalf("new master has %d rows, want 16", n)
	}
	for _, sl := range clu.Slaves() {
		if n := count(t, sl.Srv); n != 16 {
			t.Fatalf("slave has %d rows after failover, want 16", n)
		}
		if sl.ApplyErrors() != 0 {
			t.Fatalf("apply errors after failover: %d", sl.ApplyErrors())
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestFailoverWithoutSlavesFails(t *testing.T) {
	env, clu := newCluster(t, 6, 0, 0, repl.Async)
	clu.Master().Srv.Inst.Terminate()
	if _, err := clu.Failover(); err != ErrNoPromotable {
		t.Fatalf("err = %v, want ErrNoPromotable", err)
	}
	env.Stop()
	env.Shutdown()
}

func TestSyncModeClusterWiring(t *testing.T) {
	env, clu := newCluster(t, 7, 2, 0, repl.Sync)
	sess := clu.Master().Srv.Session("app")
	var committed sim.Time
	env.Go("writer", func(p *sim.Proc) {
		clu.Master().Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		clu.Master().WaitCommitted(p, clu.Master().Srv.Log.LastSeq())
		committed = p.Now()
	})
	env.RunUntil(time.Minute)
	if committed == 0 {
		t.Fatal("sync commit never completed")
	}
	for _, sl := range clu.Slaves() {
		if n := count(t, sl.Srv); n != 1 {
			t.Fatal("sync commit completed before apply")
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestPriorityApplyPropagatesToSlaves(t *testing.T) {
	env := sim.NewEnv(8)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	clu, err := New(env, c, Config{
		Cost:          server.DefaultCostModel(),
		Master:        NodeSpec{Place: place},
		Slaves:        []NodeSpec{{Place: place}},
		Preload:       preloadApp(0),
		PriorityApply: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clu.Slaves()[0].Srv.PriorityApply {
		t.Fatal("PriorityApply not propagated to slave server")
	}
	if clu.Master().Srv.PriorityApply {
		t.Fatal("master should not run with apply priority")
	}
	late, err := clu.AddSlave(NodeSpec{Place: place})
	if err != nil {
		t.Fatal(err)
	}
	if !late.Srv.PriorityApply {
		t.Fatal("PriorityApply not propagated to late slave")
	}
}

func TestAddSlaveFromMasterSnapshot(t *testing.T) {
	env, clu := newCluster(t, 9, 1, 5, repl.Async)
	// Mutate past the preload so the snapshot differs from it.
	write(env, clu, 100)
	env.RunUntil(10 * time.Second)
	sl, err := clu.AddSlaveFromMaster(NodeSpec{Place: cloud.Placement{Region: cloud.USWest1, Zone: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot already contains the live write: nothing to replay yet.
	if n := count(t, sl.Srv); n != 6 {
		t.Fatalf("snapshot slave has %d rows, want 6", n)
	}
	// New writes still replicate to it.
	write(env, clu, 101)
	env.RunUntil(time.Minute)
	if n := count(t, sl.Srv); n != 7 {
		t.Fatalf("snapshot slave has %d rows after new write, want 7", n)
	}
	if sl.ApplyErrors() != 0 {
		t.Fatalf("apply errors: %d", sl.ApplyErrors())
	}
	env.Stop()
	env.Shutdown()
}

// TestProvisionSlaveUnderWriteLoad drives continuous writes while a new
// replica is provisioned from a master snapshot. The replica must come up
// with a real catch-up backlog (the writes committed during the provision
// window), drain it with monotonically non-increasing lag at every sample
// while the write load continues, and converge to a byte-identical replica.
func TestProvisionSlaveUnderWriteLoad(t *testing.T) {
	env, clu := newCluster(t, 10, 1, 5, repl.Async)
	const writeUntil = 2 * time.Minute

	// ~10 writes/s: below the slave apply rate, so catch-up net-drains.
	env.Go("load", func(p *sim.Proc) {
		sess := clu.Master().Srv.Session("app")
		for i := 0; p.Now() < writeUntil; i++ {
			if _, err := clu.Master().Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'live')",
				sqlengine.NewInt(int64(1000+i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			p.Sleep(100 * time.Millisecond)
		}
	})

	var (
		sl        *repl.Slave
		provErr   error
		lagSample []uint64
	)
	env.Go("provision", func(p *sim.Proc) {
		p.Sleep(10 * time.Second) // let the backlog source get going
		sl, provErr = clu.ProvisionSlave(p, NodeSpec{Place: cloud.Placement{Region: cloud.USWest1, Zone: "a"}})
		if provErr != nil {
			return
		}
		// First observation with no yield since attach: the snapshot was
		// taken ProvisionTime ago, so the replica must start stale.
		lagSample = append(lagSample, sl.EventsBehindMaster())
		for p.Now() < writeUntil+time.Minute {
			p.Sleep(5 * time.Second)
			lagSample = append(lagSample, sl.EventsBehindMaster())
		}
	})

	env.RunUntil(writeUntil + 2*time.Minute)
	if provErr != nil {
		t.Fatal(provErr)
	}
	if sl == nil {
		t.Fatal("provision never completed")
	}
	if lagSample[0] == 0 {
		t.Fatal("provisioned slave attached with zero backlog; provision window had no writes")
	}
	// The catch-up phase must drain monotonically; once near the floor an
	// in-flight live write may flicker the lag by one, which is steady
	// state, not backlog growth.
	for i := 1; i < len(lagSample); i++ {
		if lagSample[i-1] > 5 && lagSample[i] > lagSample[i-1] {
			t.Fatalf("lag regressed at sample %d: %v", i, lagSample)
		}
	}
	if last := lagSample[len(lagSample)-1]; last != 0 {
		t.Fatalf("slave never caught up: final lag %d (%v)", last, lagSample)
	}
	if got, want := count(t, sl.Srv), count(t, clu.Master().Srv); got != want {
		t.Fatalf("replica diverged: %d rows vs master %d", got, want)
	}
	if sl.ApplyErrors() != 0 {
		t.Fatalf("apply errors: %d", sl.ApplyErrors())
	}
	env.Stop()
	env.Shutdown()
}
