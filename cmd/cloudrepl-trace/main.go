// Command cloudrepl-trace summarizes a Chrome trace-event file written by
// cloudrepl-bench -trace:
//
//	cloudrepl-trace out.json            # per-stage breakdown, top spans, critical path
//	cloudrepl-trace -top 20 out.json    # widen the top-spans table
//	cloudrepl-trace -check out.json     # CI gate: ≥1 span per pipeline stage and
//	                                    # one complete client→apply trace, or exit 1
//
// The file itself stays loadable in chrome://tracing or Perfetto; this
// command is the terminal-friendly view of the same data.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudrepl/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate instead of summarize: every pipeline stage has ≥1 span and some trace covers the whole pipeline")
	top := flag.Int("top", 10, "number of longest spans to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cloudrepl-trace [-check] [-top N] trace.json")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	spans, err := obs.ParseTrace(data)
	if err != nil {
		fatal(err)
	}

	if *check {
		if err := validate(spans); err != nil {
			fatal(err)
		}
		fmt.Printf("trace ok: %d spans, every stage populated, full pipeline trace present\n", len(spans))
		return
	}
	fmt.Print(obs.Summarize(spans, *top))
}

// validate is the trace-smoke gate: the instrumentation must have produced
// at least one span for every pipeline stage, and at least one write's
// causal chain must span the whole pipeline.
func validate(spans []obs.ParsedSpan) error {
	counts := map[string]int{}
	for _, sp := range spans {
		counts[sp.Stage]++
	}
	for _, st := range obs.Stages {
		if counts[st] == 0 {
			return fmt.Errorf("no spans for stage %q (stages seen: %v)", st, counts)
		}
	}
	if _, ok := obs.FullTrace(spans); !ok {
		return fmt.Errorf("no single trace covers every pipeline stage")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudrepl-trace:", err)
	os.Exit(1)
}
