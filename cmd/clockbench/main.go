// Command clockbench runs the paper's clock-synchronization experiment
// (Fig. 4 and the §IV-B.1 statistics): it measures the time difference
// between two simulated instances for 20 minutes, once with NTP applied
// only at startup and once with NTP applied every second.
//
//	clockbench
//	clockbench -seed 7 -csv fig4.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudrepl/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write per-second samples as CSV")
	flag.Parse()

	once, every := experiment.Fig4(*seed)
	fmt.Println(experiment.RenderFig4(once, every))

	if *csvPath != "" {
		var b strings.Builder
		b.WriteString("second,sync_once_ms,sync_every_second_ms\n")
		for i := range once.SamplesM {
			fmt.Fprintf(&b, "%d,%.3f,%.3f\n", i+1, once.SamplesM[i], every.SamplesM[i])
		}
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "clockbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
