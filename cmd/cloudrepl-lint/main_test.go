package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudrepl/internal/analysis"
)

// TestRemoveStaleDirectives runs the real lint pipeline over a module whose
// only directives are stale — one on its own line, one trailing a statement —
// then checks -fix-stale's editor removes exactly those and that a re-lint
// comes back clean.
func TestRemoveStaleDirectives(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module staledemo\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package pkg

//cloudrepl:allow-errdrop nothing here drops an error anymore
func clean() int {
	x := 1 //cloudrepl:allow-maporder no map in sight
	return x
}
`
	pkgDir := filepath.Join(dir, "pkg")
	if err := os.Mkdir(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(pkgDir, "pkg.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := analysis.LintDetail(dir, analysis.All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 2 {
		t.Fatalf("stale directives = %d, want 2", len(res.Stale))
	}

	fixed, err := removeStaleDirectives(res.Stale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 2 {
		t.Fatalf("fixed = %v, want 2 entries", fixed)
	}

	after, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(after), "cloudrepl:allow") {
		t.Fatalf("directives survived the fix:\n%s", after)
	}
	if !strings.Contains(string(after), "x := 1\n") {
		t.Fatalf("trailing-directive line lost its statement:\n%s", after)
	}

	res2, err := analysis.LintDetail(dir, analysis.All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Diagnostics) != 0 || len(res2.Stale) != 0 {
		t.Fatalf("post-fix lint not clean: diags=%v stale=%v", res2.Diagnostics, res2.Stale)
	}
}
