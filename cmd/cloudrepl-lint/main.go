// Command cloudrepl-lint is the repo's determinism multichecker: it runs
// the internal/analysis suite (simtime, simrand, rawgo, maporder,
// closecheck) over module packages and exits non-zero on any unannotated
// violation.
//
//	cloudrepl-lint ./...                   # whole repo (what `make lint` runs)
//	cloudrepl-lint ./internal/repl         # one package
//	cloudrepl-lint -list                   # describe the analyzers
//
// The container this repo builds in has no module proxy, so the tool
// re-implements the go/analysis driver on the standard library instead of
// plugging into `go vet -vettool`; diagnostics use the same
// file:line:col format, and the escape hatch is a
// `//cloudrepl:allow-<analyzer> <reason>` comment (see DESIGN.md,
// "Determinism contract").
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudrepl/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range splitComma(*only) {
			keep[name] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "cloudrepl-lint: -only %q matches no analyzer\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudrepl-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Lint(moduleDir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudrepl-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cloudrepl-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dirAbove(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func dirAbove(dir string) string {
	for i := len(dir) - 1; i > 0; i-- {
		if dir[i] == '/' {
			return dir[:i]
		}
	}
	return dir
}
