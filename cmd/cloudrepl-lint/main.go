// Command cloudrepl-lint is the repo's determinism and dataflow
// multichecker: it runs the internal/analysis suite — five package-local
// determinism analyzers (simtime, simrand, rawgo, maporder, closecheck) and
// four whole-program flow-aware analyzers (errdrop, lockorder, mvccalias,
// sharedstate) — over module packages and exits non-zero on any unannotated
// violation.
//
//	cloudrepl-lint ./...                   # whole repo (what `make lint` runs)
//	cloudrepl-lint ./internal/repl         # one package
//	cloudrepl-lint -list                   # describe the analyzers
//	cloudrepl-lint -only errdrop ./...     # run a subset
//	cloudrepl-lint -fix-stale ./...        # delete stale allow directives
//	cloudrepl-lint -nocache ./...          # bypass the incremental cache
//
// Results are cached in .cloudrepl-lint-cache.json at the module root, keyed
// on per-package file hashes plus the analyzer set; an unchanged tree replays
// instantly without type-checking.
//
// The container this repo builds in has no module proxy, so the tool
// re-implements the go/analysis driver on the standard library instead of
// plugging into `go vet -vettool`; diagnostics use the same
// file:line:col format, and the escape hatch is a
// `//cloudrepl:allow-<analyzer> <reason>` comment (see DESIGN.md,
// "Determinism contract").
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cloudrepl/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	fixStale := flag.Bool("fix-stale", false, "delete stale allow directives from source files")
	nocache := flag.Bool("nocache", false, "bypass the incremental lint cache")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range splitComma(*only) {
			keep[name] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "cloudrepl-lint: -only %q matches no analyzer\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudrepl-lint:", err)
		os.Exit(2)
	}
	lint := analysis.LintDetailCached
	if *nocache {
		lint = analysis.LintDetail
	}
	res, err := lint(moduleDir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudrepl-lint:", err)
		os.Exit(2)
	}

	diags := res.Diagnostics
	if *fixStale && len(res.Stale) > 0 {
		fixed, err := removeStaleDirectives(res.Stale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloudrepl-lint:", err)
			os.Exit(2)
		}
		for _, f := range fixed {
			fmt.Printf("%s: removed stale directive\n", f)
		}
		// The stale-directive diagnostics are resolved by the edit; keep
		// everything else (violations, malformed directives).
		var kept []analysis.Diagnostic
		for _, d := range diags {
			if d.Analyzer == "directive" && strings.Contains(d.Message, "stale allow-") {
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
	}

	if res.CacheHit {
		fmt.Fprintln(os.Stderr, "cloudrepl-lint: cache hit")
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cloudrepl-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// removeStaleDirectives deletes each stale allow comment in place: a
// directive on its own line is removed line-and-all, a trailing directive is
// cut from the end of its statement line. Returns "file:line" strings for
// what was removed.
func removeStaleDirectives(stale []*analysis.Directive) ([]string, error) {
	byFile := map[string][]*analysis.Directive{}
	for _, d := range stale {
		byFile[d.Pos.Filename] = append(byFile[d.Pos.Filename], d)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var fixed []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(string(data), "\n")
		dirs := byFile[file]
		// Apply bottom-up so earlier line numbers stay valid after deletions.
		sort.Slice(dirs, func(i, j int) bool { return dirs[i].Pos.Line > dirs[j].Pos.Line })
		for _, d := range dirs {
			i := d.Pos.Line - 1
			if i < 0 || i >= len(lines) {
				return nil, fmt.Errorf("%s:%d: stale directive out of range", file, d.Pos.Line)
			}
			line := lines[i]
			if strings.HasPrefix(strings.TrimSpace(line), "//cloudrepl:allow-") {
				lines = append(lines[:i], lines[i+1:]...)
			} else if col := strings.Index(line, "//cloudrepl:allow-"); col >= 0 {
				lines[i] = strings.TrimRight(line[:col], " \t")
			} else {
				return nil, fmt.Errorf("%s:%d: no directive found on line", file, d.Pos.Line)
			}
			fixed = append(fixed, fmt.Sprintf("%s:%d", file, d.Pos.Line))
		}
		if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return nil, err
		}
	}
	sort.Strings(fixed)
	return fixed, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dirAbove(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func dirAbove(dir string) string {
	for i := len(dir) - 1; i > 0; i-- {
		if dir[i] == '/' {
			return dir[:i]
		}
	}
	return dir
}
