// Command cloudrepl-bench regenerates every table and figure of the
// paper's evaluation on the simulated cloud:
//
//	cloudrepl-bench -fig 2,5          # 50/50 throughput + delay panels
//	cloudrepl-bench -fig 3,6 -short   # 80/20 panels with the quick protocol
//	cloudrepl-bench -fig 4            # clock synchronization (and T-NTP)
//	cloudrepl-bench -rtt              # half-RTT table (T-RTT)
//	cloudrepl-bench -ablation sync,lb,var
//	cloudrepl-bench -ablation elastic    # SLO-driven autoscaling (A-ELASTIC)
//	cloudrepl-bench -ablation shard      # cell-sharded scale-out (A-SHARD)
//	cloudrepl-bench -ablation pipeline   # replication data path (A-PIPELINE)
//	cloudrepl-bench -trace out.json      # fully-traced pipeline run (cloudrepl-trace summarizes)
//	cloudrepl-bench -all -csv out/       # everything, with CSVs for plotting
//	cloudrepl-bench -all -json out/      # machine-readable BENCH_*.json files
//
// Figures 2/5 share one sweep (each run yields throughput and delay), as
// do figures 3/6. Full-protocol sweeps use the paper's 10/20/5-minute runs
// on virtual time; -short shrinks them to 2/5/1 minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"cloudrepl/internal/experiment"
	"cloudrepl/internal/obs"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figures to regenerate (2,3,4,5,6)")
	rtt := flag.Bool("rtt", false, "measure the half-RTT table (T-RTT)")
	ablations := flag.String("ablation", "", "comma-separated ablations (sync,lb,var,prio,arch,chaos,elastic,pipeline,shard,consist,plan)")
	determinism := flag.Bool("determinism", false, "run the A-PIPELINE determinism sanitizer: the same seed twice, failing on any byte difference in the result JSON (with -short: corner grid + quick protocol)")
	determinismInject := flag.Bool("determinism-inject", false, "deliberately salt the determinism check with global math/rand entropy; the check must then fail (self-test of the sanitizer)")
	all := flag.Bool("all", false, "regenerate every figure, table and ablation")
	short := flag.Bool("short", false, "use the 2/5/1-minute quick protocol instead of 10/20/5")
	seed := flag.Int64("seed", 1, "base random seed")
	par := flag.Int("par", 0, "parallel runs (0 = GOMAXPROCS)")
	tracePath := flag.String("trace", "", "run one fully-traced pipeline point and write its Chrome trace-event JSON here (view in chrome://tracing or summarize with cloudrepl-trace)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	jsonDir := flag.String("json", "", "directory to write machine-readable BENCH_*.json files into")
	benchKernel := flag.Bool("bench-kernel", false, "measure raw sim-kernel speed (events/sec, ns/event, allocs/event) and emit BENCH_kernel.json; also runs as part of -all")
	kernelBaseline := flag.String("kernel-baseline", "", "checked-in kernel baseline JSON to gate against: fail when micro ns/event regresses >20% (update with: cp <jsondir>/BENCH_kernel.json bench/kernel_baseline.json)")
	benchPlan := flag.Bool("bench-plan", false, "measure executor speed by query shape (point read, index scan, hash join, grouped aggregate) and emit BENCH_planner.json; also runs as part of -all")
	planBaseline := flag.String("plan-baseline", "", "checked-in planner baseline JSON to gate against: fail when any shape's rate regresses >20% (update with: cp <jsondir>/BENCH_planner.json bench/planner_baseline.json)")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	gogc := flag.Int("gogc", 300, "GC target percentage for the bench process (simulation runs allocate in bursts and retain little, so a larger heap-growth target trades memory for wall-clock; 0 leaves the runtime default)")
	flag.Parse()

	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want["fig"+f] = true
		}
	}
	for _, a := range strings.Split(*ablations, ",") {
		if a = strings.TrimSpace(a); a != "" {
			want["ab-"+a] = true
		}
	}
	if *rtt {
		want["rtt"] = true
	}
	if *all {
		for _, k := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "rtt", "ab-sync", "ab-lb", "ab-var", "ab-prio", "ab-arch", "ab-chaos", "ab-elastic", "ab-pipeline", "ab-shard", "ab-consist", "ab-plan", "kernel", "planner"} {
			want[k] = true
		}
	}
	if *benchKernel {
		want["kernel"] = true
	}
	if *benchPlan {
		want["planner"] = true
	}
	opts := experiment.SweepOpts{Short: *short, Parallelism: *par, Seed: *seed}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	if *determinism || *determinismInject {
		experiment.InjectNondeterminism = *determinismInject
		banner("determinism sanitizer: A-PIPELINE twice with one seed, byte-compared JSON")
		if err := experiment.PipelineDeterminism(opts, *short); err != nil {
			fatal(err)
		}
		banner("determinism sanitizer: traced run twice with one seed, byte-compared trace + metrics")
		if err := experiment.TraceDeterminism(opts); err != nil {
			fatal(err)
		}
		banner("determinism sanitizer: sharded runner serial vs parallel, byte-compared merged JSON")
		if err := experiment.KernelDeterminism(opts); err != nil {
			fatal(err)
		}
		banner("determinism sanitizer: sharded tier with a live split twice with one seed, byte-compared JSON")
		if err := experiment.ShardDeterminism(opts); err != nil {
			fatal(err)
		}
		banner("determinism sanitizer: MVCC session-consistency arm twice with one seed, byte-compared JSON")
		if err := experiment.ConsistDeterminism(opts); err != nil {
			fatal(err)
		}
		banner("determinism sanitizer: cost-based planner arm twice with one seed, byte-compared JSON incl. EXPLAIN")
		if err := experiment.PlanDeterminism(opts); err != nil {
			fatal(err)
		}
		fmt.Println("determinism check passed: both runs produced byte-identical JSON")
		return
	}

	if len(want) == 0 && *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	writeJSON := func(name string, v any) {
		if *jsonDir == "" {
			return
		}
		if err := experiment.WriteJSON(*jsonDir, name, v); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(*jsonDir, "BENCH_"+name+".json"))
	}

	start := time.Now() //cloudrepl:allow-simtime the CLI reports real elapsed wall time, not simulated time

	if want["fig2"] || want["fig5"] {
		sw := experiment.Fig2Sweep(opts)
		banner("sweep: 50/50, data size 300 (figures 2 and 5)")
		if err := sw.Run(); err != nil {
			fatal(err)
		}
		if want["fig2"] {
			fmt.Println(sw.RenderThroughput("Fig. 2 — end-to-end throughput, 50/50"))
			fmt.Println(sw.RenderSaturation("T-SAT (50/50)"))
		}
		if want["fig5"] {
			fmt.Println(sw.RenderDelay("Fig. 5 — average relative replication delay, 50/50"))
		}
		writeCSV("fig2_fig5.csv", sw.CSV())
		writeJSON("fig2_fig5", experiment.SweepJSON(sw))
	}

	if want["fig3"] || want["fig6"] {
		sw := experiment.Fig3Sweep(opts)
		banner("sweep: 80/20, data size 600 (figures 3 and 6)")
		if err := sw.Run(); err != nil {
			fatal(err)
		}
		if want["fig3"] {
			fmt.Println(sw.RenderThroughput("Fig. 3 — end-to-end throughput, 80/20"))
			fmt.Println(sw.RenderSaturation("T-SAT (80/20)"))
		}
		if want["fig6"] {
			fmt.Println(sw.RenderDelay("Fig. 6 — average relative replication delay, 80/20"))
		}
		writeCSV("fig3_fig6.csv", sw.CSV())
		writeJSON("fig3_fig6", experiment.SweepJSON(sw))
	}

	if want["fig4"] {
		banner("clock synchronization (figure 4 and T-NTP)")
		once, every := experiment.Fig4(*seed)
		fmt.Println(experiment.RenderFig4(once, every))
		var csv strings.Builder
		csv.WriteString("second,sync_once_ms,sync_every_second_ms\n")
		for i := range once.SamplesM {
			fmt.Fprintf(&csv, "%d,%.3f,%.3f\n", i+1, once.SamplesM[i], every.SamplesM[i])
		}
		writeCSV("fig4.csv", csv.String())
		writeJSON("fig4", experiment.Fig4JSON(once, every))
	}

	if want["rtt"] {
		banner("half-RTT measurements (T-RTT)")
		rows := experiment.TableRTT(*seed)
		fmt.Println(experiment.RenderRTT(rows))
		writeJSON("rtt", experiment.RTTJSON(rows))
	}

	if want["ab-sync"] {
		banner("ablation: synchronization models (A-SYNC)")
		rows, err := experiment.AblationSyncModes(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderSyncModes(rows))
		writeJSON("sync", experiment.SyncModesJSON(rows))
	}

	if want["ab-lb"] {
		banner("ablation: read balancers (A-LB)")
		rows, err := experiment.AblationBalancers(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderBalancers(rows))
		writeJSON("lb", experiment.BalancersJSON(rows))
	}

	if want["ab-prio"] {
		banner("ablation: prioritized SQL applier (A-PRIO)")
		r, err := experiment.AblationApplierPriority(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderApplierPriority(r))
		writeJSON("prio", experiment.PriorityJSON(r))
	}

	if want["ab-arch"] {
		banner("ablation: master-slave vs multi-master (A-ARCH)")
		rows, err := experiment.AblationArchitectures(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderArchitectures(rows))
		writeJSON("arch", experiment.ArchitecturesJSON(rows))
	}

	if want["ab-chaos"] {
		banner("ablation: fault injection and recovery (A-CHAOS)")
		r, err := experiment.AblationChaos(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderChaos(r))
		writeJSON("chaos", experiment.ChaosJSON(r))
	}

	if want["ab-var"] {
		banner("ablation: instance performance variation (A-VAR)")
		v, err := experiment.AblationInstanceVariation(opts, 12)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderVariation(v))
		writeJSON("var", experiment.VariationJSON(v))
	}

	if want["ab-pipeline"] {
		banner("ablation: replication pipeline (A-PIPELINE)")
		r, err := experiment.AblationPipeline(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderPipeline(r))
		writeJSON("pipeline", experiment.PipelineJSON(r))
	}

	if want["ab-shard"] {
		banner("ablation: cell-sharded scale-out (A-SHARD)")
		r, err := experiment.AblationSharding(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderSharding(r))
		writeJSON("shard", experiment.ShardingJSON(r))
	}

	if want["ab-consist"] {
		banner("ablation: read-consistency tiers (A-CONSIST)")
		r, err := experiment.AblationConsistency(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderConsistency(r))
		writeJSON("consist", experiment.ConsistencyJSON(r))
	}

	if want["ab-plan"] {
		banner("ablation: cost-based planner vs naive planning (A-PLAN)")
		r, err := experiment.AblationPlan(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderPlan(r))
		writeJSON("plan", experiment.PlanJSON(r))
	}

	if want["ab-elastic"] {
		banner("ablation: SLO-driven autoscaling (A-ELASTIC)")
		r, err := experiment.AblationElastic(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderElastic(r))
		writeJSON("elastic", experiment.ElasticJSON(r))
	}

	if *tracePath != "" {
		banner("trace: fully-instrumented pipeline run (quick protocol)")
		r, err := experiment.TraceRun(opts)
		if err != nil {
			fatal(err)
		}
		if dir := filepath.Dir(*tracePath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*tracePath, r.TraceJSON, 0o644); err != nil {
			fatal(err)
		}
		spans, err := obs.ParseTrace(r.TraceJSON)
		if err != nil {
			fatal(err)
		}
		fmt.Println(obs.Summarize(spans, 10))
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans)\n", *tracePath, len(spans))
	}

	if want["kernel"] {
		banner("kernel bench: raw scheduler speed (micro workload + one experiment cell)")
		//cloudrepl:allow-simtime the kernel bench records the surrounding sweep's real wall-clock
		r, err := experiment.KernelBench(opts, time.Since(start))
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderKernelBench(r))
		writeJSON("kernel", r)
		if *kernelBaseline != "" {
			if err := experiment.CheckKernelBaseline(*kernelBaseline, r); err != nil {
				fatal(err)
			}
			fmt.Printf("kernel baseline gate passed (%s)\n", *kernelBaseline)
		}
	}

	if want["planner"] {
		banner("planner bench: executor speed by query shape (point read, index scan, hash join, group agg)")
		r, err := experiment.PlanBench()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiment.RenderPlanBench(r))
		writeJSON("planner", r)
		if *planBaseline != "" {
			if err := experiment.CheckPlanBaseline(*planBaseline, r); err != nil {
				fatal(err)
			}
			fmt.Printf("planner baseline gate passed (%s)\n", *planBaseline)
		}
	}

	//cloudrepl:allow-simtime the CLI reports real elapsed wall time, not simulated time
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
}

func banner(s string) {
	fmt.Println("==============================================================================")
	fmt.Println(s)
	fmt.Println("==============================================================================")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudrepl-bench:", err)
	os.Exit(1)
}
