// Command cloudstone runs a single load test against a freshly built
// replicated cluster and prints the measured throughput, latency,
// utilization and replication delay:
//
//	cloudstone -users 150 -slaves 3 -ratio 0.5 -scale 300 -loc same-zone
//	cloudstone -users 400 -slaves 10 -ratio 0.8 -scale 600 -loc diff-region -short
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cloudrepl/internal/experiment"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
)

func main() {
	users := flag.Int("users", 100, "concurrent emulated users")
	slaves := flag.Int("slaves", 2, "number of slave replicas")
	ratio := flag.Float64("ratio", 0.5, "read ratio (0.5 or 0.8 in the paper)")
	scale := flag.Int("scale", 300, "initial data size")
	locFlag := flag.String("loc", "same-zone", "slave location: same-zone, diff-zone, diff-region")
	modeFlag := flag.String("mode", "async", "replication mode: async, semi-sync, sync")
	balFlag := flag.String("balancer", "round-robin", "read balancer: round-robin, random, least-conn, least-lag, staleness-bounded")
	short := flag.Bool("short", false, "2/5/1-minute protocol instead of 10/20/5")
	hetero := flag.Bool("hetero", false, "sample instance CPU speeds with CoV 21%")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var loc experiment.Location
	switch *locFlag {
	case "same-zone":
		loc = experiment.SameZone
	case "diff-zone":
		loc = experiment.DiffZone
	case "diff-region":
		loc = experiment.DiffRegion
	default:
		fmt.Fprintf(os.Stderr, "unknown location %q\n", *locFlag)
		os.Exit(2)
	}
	var mode repl.Mode
	switch *modeFlag {
	case "async":
		mode = repl.Async
	case "semi-sync":
		mode = repl.SemiSync
	case "sync":
		mode = repl.Sync
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}
	var balancer func() proxy.Balancer
	switch *balFlag {
	case "round-robin":
		balancer = nil
	case "random":
		balancer = func() proxy.Balancer { return proxy.Random{} }
	case "least-conn":
		balancer = func() proxy.Balancer { return proxy.LeastConn{} }
	case "least-lag":
		balancer = func() proxy.Balancer { return proxy.LeastLag{} }
	case "staleness-bounded":
		balancer = func() proxy.Balancer { return &proxy.StalenessBounded{MaxEventsBehind: 30} }
	default:
		fmt.Fprintf(os.Stderr, "unknown balancer %q\n", *balFlag)
		os.Exit(2)
	}

	spec := experiment.RunSpec{
		Seed: *seed, Users: *users, Slaves: *slaves, Scale: *scale,
		ReadRatio: *ratio, Loc: loc, Mode: mode, Balancer: balancer,
		Heterogeneous: *hetero,
	}
	if *short {
		spec.RampUp, spec.Steady, spec.RampDown = 2*time.Minute, 5*time.Minute, time.Minute
	}

	fmt.Printf("cloudstone: %d users, %d slaves, %.0f/%.0f, scale %d, %s, %s replication\n\n",
		*users, *slaves, *ratio*100, (1-*ratio)*100, *scale, loc, mode)
	res, err := experiment.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudstone:", err)
		os.Exit(1)
	}

	fmt.Printf("end-to-end throughput: %8.2f ops/s (reads %.2f, writes %.2f)\n",
		res.Throughput, res.ReadThroughput, res.WriteThroughput)
	fmt.Printf("operation latency:     %8.1f ms mean (writes %.1f ms)\n", res.LatencyMsMean, res.WriteLatencyMsMean)
	fmt.Printf("errors:                %8d\n", res.Errors)
	fmt.Printf("master CPU:            %8.0f%%\n", res.MasterUtil*100)
	for i, u := range res.SlaveUtil {
		fmt.Printf("slave%-2d CPU:           %8.0f%%   heartbeat delay %.1f ms\n", i+1, u*100, res.PerSlaveDelayMs[i])
	}
	if res.MasterFallbacks > 0 {
		fmt.Printf("master fallback reads: %8d\n", res.MasterFallbacks)
	}
	sort.Float64s(res.PerSlaveDelayMs)
	fmt.Printf("avg replication delay: %8.1f ms (raw, incl. clock offset)\n", res.AvgDelayMs)

	if len(res.LagSeries) > 0 {
		fmt.Println("\nslave backlog over the run (events behind master, sampled per minute):")
		for _, series := range res.LagSeries {
			fmt.Printf("  %-8s", series.Name)
			pts := series.Points()
			for i, pt := range pts {
				if i%4 != 0 { // 15s samples → per-minute display
					continue
				}
				fmt.Printf(" %6.0f", pt.V)
			}
			fmt.Println()
		}
	}
}
