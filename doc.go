// Package cloudrepl reproduces "Application-Managed Database Replication
// on Virtualized Cloud Environments" (Zhao, Sakr, Fekete, Wada, Liu; ICDE
// Workshops 2012) as a self-contained Go system.
//
// The public surface lives in internal/core (the application-managed
// replicated database handle) with the substrates underneath:
//
//   - internal/sim        — process-based discrete-event simulation kernel
//   - internal/cloud      — simulated EC2: regions, zones, instances, network
//   - internal/vclock     — drifting instance clocks and NTP daemons
//   - internal/sqlengine  — embeddable MySQL-flavored SQL engine
//   - internal/binlog     — statement-based binary log
//   - internal/repl       — master-slave replication (async/semi-sync/sync)
//   - internal/server     — database servers with a virtual CPU cost model
//   - internal/pool       — DBCP-style connection pool
//   - internal/proxy      — Connector/J-style read/write splitting balancer
//   - internal/cluster    — topology build-out, elasticity, failover
//   - internal/cloudstone — the customized Cloudstone workload
//   - internal/heartbeat  — the replication-delay measurement plugin
//   - internal/experiment — the harness regenerating every figure and table
//
// The benchmarks in bench_test.go regenerate each figure in compact form;
// cmd/cloudrepl-bench produces the full panels. See README.md, DESIGN.md
// and EXPERIMENTS.md.
package cloudrepl
