// Failover: the application-managed cluster loses its master mid-traffic,
// promotes the most-up-to-date slave, re-points the proxy and keeps
// serving — including the documented risk of asynchronous replication:
// writes the promoted slave had not yet applied are lost.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func main() {
	env := sim.NewEnv(23)
	provider := cloud.New(env, cloud.DefaultConfig())
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	otherZone := cloud.Placement{Region: cloud.USWest1, Zone: "b"}

	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, ddl := range []string{
			"CREATE DATABASE shop",
			"CREATE TABLE shop.orders (id BIGINT PRIMARY KEY, item VARCHAR(40), created TIMESTAMP)",
		} {
			if _, err := srv.ExecFree(sess, ddl); err != nil {
				return err
			}
		}
		return nil
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}, {Place: otherZone}},
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(clu, core.WithDatabase("shop"), core.WithClientPlace(zone))

	env.Go("app", func(p *sim.Proc) {
		stamp := func(format string, args ...any) {
			fmt.Printf("[%7s] %s\n", p.Now().Round(time.Millisecond), fmt.Sprintf(format, args...))
		}

		accepted := 0
		for i := 1; i <= 20; i++ {
			if _, err := db.Exec(p, "INSERT INTO orders (id, item, created) VALUES (?, 'widget', UTC_MICROS())",
				sqlengine.NewInt(int64(i))); err == nil {
				accepted++
			}
		}
		stamp("accepted %d orders through the master", accepted)

		// Disaster: the master's VM dies. In-flight replication stops.
		oldMaster := db.Cluster().Master().Srv
		oldMaster.Inst.Terminate()
		stamp("MASTER %s TERMINATED", oldMaster.Name)

		if _, err := db.Exec(p, "INSERT INTO orders (id, item, created) VALUES (21, 'gadget', UTC_MICROS())"); err != nil {
			stamp("write rejected while headless: %v", err)
		}

		// The application promotes the most-up-to-date slave itself — the
		// essence of the application-managed approach.
		if err := db.Failover(); err != nil {
			log.Fatal(err)
		}
		promoted := db.Cluster().Master().Srv
		stamp("promoted %s to master; %d slave(s) re-attached",
			promoted.Name, len(db.Cluster().Slaves()))

		set, err := db.Query(p, "SELECT COUNT(*) FROM orders")
		if err != nil {
			log.Fatal(err)
		}
		stamp("orders visible after failover: %s of %d accepted (async replication may lose the tail)",
			set.Rows[0][0], accepted)

		// Traffic resumes against the new topology.
		for i := 100; i < 110; i++ {
			if _, err := db.Exec(p, "INSERT INTO orders (id, item, created) VALUES (?, 'post-failover', UTC_MICROS())",
				sqlengine.NewInt(int64(i))); err != nil {
				log.Fatal(err)
			}
		}
		db.WaitCaughtUp(p, time.Minute)
		set, _ = db.Query(p, "SELECT COUNT(*) FROM orders")
		stamp("cluster healthy again: %s orders on the promoted master and its slaves", set.Rows[0][0])
	})

	env.Run()
	env.Shutdown()
}
