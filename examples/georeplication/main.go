// Geo-replication: slaves spread across availability zones and regions,
// reproducing the paper's geography findings interactively — the unloaded
// delay tracks the half-RTT (16/21/173 ms), but workload dominates:
// saturating the replicas moves delay by orders of magnitude while the
// geographic spread stays constant.
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/heartbeat"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func main() {
	env := sim.NewEnv(11)
	provider := cloud.New(env, cloud.DefaultConfig())
	master := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	preload := func(srv *server.DBServer) error {
		if err := cloudstone.Preload(200)(srv); err != nil {
			return err
		}
		return heartbeat.Preload(srv)
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:   repl.Async,
		Cost:   server.DefaultCostModel(),
		Master: cluster.NodeSpec{Place: master},
		Slaves: []cluster.NodeSpec{
			{Place: cloud.Placement{Region: cloud.USWest1, Zone: "a"}},      // same zone
			{Place: cloud.Placement{Region: cloud.USWest1, Zone: "b"}},      // cross zone
			{Place: cloud.Placement{Region: cloud.EUWest1, Zone: "a"}},      // cross region
			{Place: cloud.Placement{Region: cloud.APNortheast1, Zone: "a"}}, // cross region (far)
		},
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(clu, core.WithDatabase(cloudstone.DatabaseName), core.WithClientPlace(master))
	hb := heartbeat.Start(env, clu.Master(), time.Second)

	measure := func(label string, from, to sim.Time) {
		ids := hb.IDsInWindow(from, to)
		fmt.Printf("\n%s\n", label)
		for _, sl := range clu.Slaves() {
			ms, err := heartbeat.AvgDelay(clu.Master(), sl, ids)
			if err != nil {
				fmt.Printf("  %-10s %-18s delay: (still applying)\n", sl.Srv.Name, sl.Srv.Inst.Place)
				continue
			}
			fmt.Printf("  %-10s %-18s delay: %9.1f ms\n", sl.Srv.Name, sl.Srv.Inst.Place, ms)
		}
	}

	// Phase 1: no application load — delay is pure topology.
	env.Go("phases", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute)
		measure("unloaded (delay ≈ one-way latency + apply):", 0, p.Now())

		// Phase 2: heavy write load saturates the appliers everywhere.
		loadFrom := p.Now()
		for w := 0; w < 25; w++ {
			w := w
			p.Env().Go(fmt.Sprintf("writer%d", w), func(wp *sim.Proc) {
				for i := 0; wp.Now() < loadFrom+4*time.Minute; i++ {
					if _, err := db.Exec(wp, "INSERT INTO attendance (id, event_id, user_id, created) VALUES (?, 1, 1, UTC_MICROS())",
						sqlengine.NewInt(int64(2_000_000+w*100_000+i))); err != nil {
						log.Fatal(err)
					}
					wp.Sleep(sim.Exp(wp.Rand(), 1500*time.Millisecond))
				}
			})
		}
		p.Sleep(4 * time.Minute)
		measure("under heavy write load (workload dwarfs geography):", loadFrom, p.Now())

		p.Sleep(3 * time.Minute)
		measure("after load stops (replicas drain their backlogs):", loadFrom+4*time.Minute, p.Now())
	})
	env.RunUntil(12 * time.Minute)
	env.Stop()
	env.Shutdown()
}
