// Chaos: a schedule-driven fault injector crashes a replica and then the
// master while closed-loop traffic keeps flowing. The proxy's retry policy
// absorbs the replica crash (evicting it until it returns) and the master
// crash (automatic slave promotion via the failover hook), so the
// application sees degraded throughput instead of an outage.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func main() {
	env := sim.NewEnv(7)
	provider := cloud.New(env, cloud.DefaultConfig())
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, ddl := range []string{
			"CREATE DATABASE shop",
			"CREATE TABLE shop.orders (id BIGINT PRIMARY KEY, item VARCHAR(40), created TIMESTAMP)",
		} {
			if _, err := srv.ExecFree(sess, ddl); err != nil {
				return err
			}
		}
		return nil
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}, {Place: zone}},
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(clu,
		core.WithDatabase("shop"),
		core.WithClientPlace(zone),
		core.WithRetryPolicy(proxy.DefaultRetryPolicy()))

	// The fault plan: slave1 reboots at 2:00 (back at 3:00), the master
	// dies for good at 5:00.
	sched := new(chaos.Schedule).
		CrashFor(2*time.Minute, time.Minute, "slave1").
		Crash(5*time.Minute, "master")
	inj := chaos.Start(env, provider, sched)

	const runFor = 8 * time.Minute
	var ok, failed int
	env.Go("app", func(p *sim.Proc) {
		stamp := func(format string, args ...any) {
			fmt.Printf("[%7s] %s\n", p.Now().Round(time.Millisecond), fmt.Sprintf(format, args...))
		}
		for i := 1; p.Now() < runFor; i++ {
			var err error
			if i%2 == 0 {
				_, err = db.Exec(p, "INSERT INTO orders (id, item, created) VALUES (?, 'widget', UTC_MICROS())",
					sqlengine.NewInt(int64(i)))
			} else {
				_, err = db.Query(p, "SELECT COUNT(*) FROM orders")
			}
			if err != nil {
				failed++
			} else {
				ok++
			}
			p.Sleep(500 * time.Millisecond)
		}
		st := db.Stats().Proxy
		stamp("traffic done: %d ok, %d failed", ok, failed)
		stamp("retries=%d timeouts=%d evictions=%d readmissions=%d failovers=%d",
			st.Retries, st.Timeouts, st.SlaveEvictions, st.SlaveReadmissions, st.Failovers)
		stamp("final master: %s (%d slave(s) attached)",
			db.Cluster().Master().Srv.Name, len(db.Cluster().Slaves()))
	})

	env.RunUntil(runFor + time.Minute)
	env.Stop()
	env.Shutdown()

	fmt.Println("\ninjected faults:")
	for _, a := range inj.Log() {
		fmt.Printf("  %s\n", a)
	}
}
