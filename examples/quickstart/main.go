// Quickstart: build an application-managed replicated database tier — one
// master and two slaves on simulated EC2 small instances — then write
// through the master, read through the slaves, and watch replication lag.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func main() {
	env := sim.NewEnv(42)
	provider := cloud.New(env, cloud.DefaultConfig())
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	// Every node preloads the same schema before replication starts.
	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, ddl := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.notes (id BIGINT PRIMARY KEY, body VARCHAR(100), created TIMESTAMP)",
		} {
			if _, err := srv.ExecFree(sess, ddl); err != nil {
				return err
			}
		}
		return nil
	}

	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}, {Place: zone}},
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}

	db := core.Open(clu, core.WithDatabase("app"), core.WithClientPlace(zone))

	env.Go("app", func(p *sim.Proc) {
		// Writes are routed to the master.
		for i := 1; i <= 5; i++ {
			if _, err := db.Exec(p, "INSERT INTO notes (id, body, created) VALUES (?, ?, UTC_MICROS())",
				sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("note %d", i))); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("[%6s] wrote 5 notes to the master\n", p.Now().Round(time.Millisecond))

		// Right after the writes the slaves may still be catching up.
		st := db.Staleness()
		for _, sl := range st.Slaves {
			fmt.Printf("[%6s] %s is %d binlog events behind\n",
				p.Now().Round(time.Millisecond), sl.Name, sl.EventsBehind)
		}

		// Reads are balanced over the slaves; wait for replication so the
		// count is fresh.
		db.WaitCaughtUp(p, time.Minute)
		set, err := db.Query(p, "SELECT COUNT(*) FROM notes")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%6s] a slave sees %s notes (replication caught up)\n",
			p.Now().Round(time.Millisecond), set.Rows[0][0])

		// The application can scale the read tier at runtime.
		spec := cluster.NodeSpec{Place: cloud.Placement{Region: cloud.USWest1, Zone: "b"}}
		if err := db.Scale(p, +1, core.ScaleOpts{Spec: spec}); err != nil {
			log.Fatal(err)
		}
		db.WaitCaughtUp(p, time.Minute)
		fmt.Printf("[%6s] scaled out to %d slaves; max staleness now %d events\n",
			p.Now().Round(time.Millisecond), len(db.Cluster().Slaves()), db.Staleness().MaxEvents)
	})

	env.Run()
}
