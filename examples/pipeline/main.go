// Pipeline: the replication data path upgrades, side by side. Two identical
// clusters take the same write burst while readers hammer their replicas;
// one runs the classic path (per-statement fsync, one network transit per
// binlog event, a single SQL applier), the other the full pipeline (group
// commit, batched shipping, four conflict-tracked apply workers). The
// pipelined replica drains its backlog far sooner even though both apply
// the exact same statements in the exact same commit order.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func run(name string, pc repl.PipelineConfig) {
	env := sim.NewEnv(11)
	provider := cloud.New(env, cloud.DefaultConfig())
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, ddl := range []string{
			"CREATE DATABASE shop",
			"CREATE TABLE shop.orders (id BIGINT PRIMARY KEY, item VARCHAR(40))",
			"CREATE TABLE shop.events (id BIGINT PRIMARY KEY, kind VARCHAR(40))",
		} {
			if _, err := srv.ExecFree(sess, ddl); err != nil {
				return err
			}
		}
		return nil
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:     repl.Async,
		Cost:     server.DefaultCostModel(),
		Master:   cluster.NodeSpec{Place: zone},
		Slaves:   []cluster.NodeSpec{{Place: zone}},
		Preload:  preload,
		Pipeline: pc,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(clu, core.WithDatabase("shop"), core.WithClientPlace(zone))
	sl := clu.Slaves()[0]

	// Six readers keep the replica's only vCPU busy — the contention that
	// makes the classic single applier drain one statement per CPU-queue
	// round trip.
	for i := 0; i < 6; i++ {
		sess := sl.Srv.Session("shop")
		env.Go("reader", func(p *sim.Proc) {
			for {
				if _, err := sl.Srv.Exec(p, sess, "SELECT COUNT(*) FROM orders"); err != nil {
					return
				}
			}
		})
	}

	// A burst of 40 writes alternating between two tables: disjoint write
	// sets, so the parallel applier may overlap them.
	const writes = 40
	base := clu.Master().Srv.Log.LastSeq()
	for i := 0; i < writes; i++ {
		stmt := "INSERT INTO orders (id, item) VALUES (?, 'widget')"
		if i%2 == 0 {
			stmt = "INSERT INTO events (id, kind) VALUES (?, 'click')"
		}
		id := sqlengine.NewInt(int64(i))
		env.Go("writer", func(p *sim.Proc) {
			if _, err := db.Exec(p, stmt, id); err != nil {
				log.Fatal(err)
			}
		})
	}

	var drained sim.Time
	env.Go("watch", func(p *sim.Proc) {
		for sl.AppliedSeq() < base+writes {
			p.Sleep(50 * time.Millisecond)
		}
		drained = p.Now()
	})

	env.RunUntil(5 * time.Minute)
	env.Stop()
	env.Shutdown()

	st := db.Stats().Repl
	fmt.Printf("%-14s replica drained %d writes at t=%-8v", name, writes, drained.Round(10*time.Millisecond))
	fmt.Printf("  group-commits=%-3d batches=%-3d entries=%d\n",
		st.GroupCommits, st.BatchesShipped, st.EntriesShipped)
}

func main() {
	run("classic", repl.PipelineConfig{})
	run("full-pipeline", repl.PipelineConfig{
		GroupCommitWindow: 60 * time.Millisecond,
		BatchMaxEntries:   32,
		BatchMaxBytes:     64 << 10,
		ApplyWorkers:      4,
	})
}
