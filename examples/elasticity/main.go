// Elasticity: the SLO-driven autoscaling controller grows a read-replica
// fleet under a stepped load ramp. A staleness-SLO policy watches the p95
// replication delay of every admitted replica; when the SLO is violated it
// provisions a new slave, warms it behind the proxy until the binlog lag is
// gone, and only then admits it for reads. Once the write master's CPU
// saturates, another replica buys nothing — the controller detects that,
// refuses to scale further and reports the tier master-bound.
//
// An operator process cross-checks the controller's view with the
// pt-heartbeat-style plugin, the way a DBA would eyeball replication lag
// independently of whatever the autoscaler claims.
//
//	go run ./examples/elasticity
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/elastic"
	"cloudrepl/internal/heartbeat"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

func main() {
	env := sim.NewEnv(11)
	cfg := cloud.DefaultConfig()
	cfg.CPUCoV = 0 // homogeneous fleet: the walkthrough is about control, not luck
	provider := cloud.New(env, cfg)
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	preload := func(srv *server.DBServer) error {
		if err := cloudstone.Preload(300)(srv); err != nil {
			return err
		}
		return heartbeat.Preload(srv)
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}}, // start with a single replica
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A stepped closed-loop ramp: comfortable, then past one slave's
	// saturation point, then past the master's.
	stages := []cloudstone.Stage{
		{Users: 50, Dur: 150 * time.Second},
		{Users: 100, Dur: 150 * time.Second},
		{Users: 150, Dur: 150 * time.Second},
		{Users: 200, Dur: 150 * time.Second},
		{Users: 250, Dur: 150 * time.Second},
	}
	db := core.Open(clu,
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(zone),
		core.WithPool(pool.Config{MaxActive: 260, MaxIdle: 260}))
	hb := heartbeat.Start(env, clu.Master(), time.Second)
	driver := cloudstone.NewDriver(db, cloudstone.Config{
		Scale:     300,
		ReadRatio: 0.5,
		Stages:    stages,
	})

	const sloMs = 500
	ctrl := elastic.Start(env, elastic.Config{
		Policy:      elastic.StalenessSLO{TargetP95Ms: sloMs},
		Spec:        cluster.NodeSpec{Place: zone},
		SLOTargetMs: sloMs,
	}, elastic.Sources{
		Cluster:   clu,
		Proxy:     db.Proxy(),
		Ops:       func() float64 { return float64(driver.CompletedOps()) },
		PoolWaits: func() float64 { return float64(db.Pool().Stats().Waits) },
	})

	// The operator: every 90 seconds, an independent look at the fleet via
	// the heartbeat table rather than the controller's own monitor.
	env.Go("operator", func(p *sim.Proc) {
		for {
			p.Sleep(90 * time.Second)
			line := fmt.Sprintf("[%7s] operator:", p.Now().Round(time.Second))
			for _, sl := range clu.Slaves() {
				st, err := hb.Staleness(sl, p.Now())
				state := "admitted"
				if db.Proxy().Quarantined(sl) {
					state = "warming"
				}
				if err != nil {
					line += fmt.Sprintf(" %s(%s hb-err)", sl.Srv.Name, state)
					continue
				}
				line += fmt.Sprintf(" %s(%s hb-lag %s)", sl.Srv.Name, state, st.Round(10*time.Millisecond))
			}
			fmt.Println(line)
		}
	})

	driver.Start(env)
	var total time.Duration
	for _, s := range stages {
		total += s.Dur
	}
	env.RunUntil(total)
	ctrl.Stop()
	hb.Stop()
	env.Stop()
	env.Shutdown()

	fmt.Println("\ncontroller decision log:")
	for _, d := range ctrl.Decisions() {
		fmt.Printf("  %s\n", d)
	}

	res := driver.Result()
	fmt.Printf("\nramp done: %.2f ops/s, %d errors, %d slave(s) attached\n",
		res.Throughput, res.Errors, len(clu.Slaves()))
	fmt.Printf("time in SLO violation (p95 > %d ms): %s\n",
		int(sloMs), ctrl.SLOViolation(sloMs).Truncate(time.Second))
	var vmMin float64
	for _, inst := range provider.Instances() {
		if inst.Name != "master" {
			vmMin += inst.UpTime().Minutes()
		}
	}
	fmt.Printf("slave VM-minutes billed: %.1f\n", vmMin)
	if bound, at, n := ctrl.MasterBound(); bound {
		fmt.Printf("verdict: master-bound at %d slave(s) since %s — scaling further buys nothing\n",
			n, time.Duration(at).Truncate(time.Second))
	} else {
		fmt.Printf("verdict: %s\n", ctrl.Verdict())
	}
}
