// Instance lottery: the paper's §IV-A observation made actionable. Two
// identically-priced m1.small instances can sit on different physical CPUs
// (an E5430 vs a slower E5507); the difference shows up directly in
// end-to-end throughput. The application-managed approach lets the
// application benchmark its instances after launch and relaunch the slow
// ones — "validate instance performance before deploying".
//
//	go run ./examples/instancelottery
package main

import (
	"fmt"
	"log"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

func main() {
	env := sim.NewEnv(20260705)
	// Half the physical hosts in this zone carry the slower CPU.
	provider := cloud.New(env, cloud.Config{
		CPUModels: []cloud.CPUModel{cloud.XeonE5430, cloud.XeonE5507},
	})
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, ddl := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.t (id BIGINT PRIMARY KEY)",
		} {
			if _, err := srv.ExecFree(sess, ddl); err != nil {
				return err
			}
		}
		return nil
	}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}, {Place: zone}, {Place: zone}},
		Preload: preload,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.Open(clu, core.WithDatabase("app"), core.WithClientPlace(zone))

	env.Go("ops", func(p *sim.Proc) {
		show := func(title string) float64 {
			fmt.Println(title)
			worst := 2.0
			for _, r := range db.ValidateInstances(p, 20) {
				fmt.Printf("  %-8s %-34s measured speed %.2f×\n", r.Name, r.CPUModel, r.Speed)
				if r.Speed < worst {
					worst = r.Speed
				}
			}
			return worst
		}

		worst := show("instances as launched:")
		const acceptable = 0.9
		if worst >= acceptable {
			fmt.Println("\nall instances acceptable — lucky launch")
			return
		}

		// Relaunch until every replica clears the bar (the master stays;
		// replacing it would need a failover).
		fmt.Printf("\nslowest replica below %.2f× — relaunching slow slaves\n\n", acceptable)
		for attempt := 1; attempt <= 10; attempt++ {
			var slow []*repl.Slave
			for _, sl := range db.Cluster().Slaves() {
				if cloud.MeasureSpeed(p, sl.Srv.Inst, 20) < acceptable {
					slow = append(slow, sl)
				}
			}
			if len(slow) == 0 {
				break
			}
			for _, sl := range slow {
				db.Cluster().RemoveSlave(sl)
				if _, err := db.Cluster().AddSlave(cluster.NodeSpec{Place: zone}); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("attempt %d: replaced %d slow slave(s)\n", attempt, len(slow))
		}
		fmt.Println()
		show("instances after validation loop:")
	})
	env.Run()
	env.Shutdown()
}
