// Social calendar: the paper's Cloudstone scenario as an application — a
// Web 2.0 events calendar whose business logic talks straight to the
// replicated database tier. It demonstrates the staleness anomaly of
// asynchronous replication (a user who creates an event may not see it on
// the next page load) and the staleness-bounded balancer that fixes it.
//
//	go run ./examples/socialcalendar
package main

import (
	"fmt"
	"log"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func buildTierOpts(env *sim.Env, extra ...core.Option) *core.DB {
	provider := cloud.New(env, cloud.DefaultConfig())
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	clu, err := cluster.New(env, provider, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: zone},
		Slaves:  []cluster.NodeSpec{{Place: zone}, {Place: zone}},
		Preload: cloudstone.Preload(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := append([]core.Option{
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(zone),
	}, extra...)
	return core.Open(clu, opts...)
}

func buildTier(env *sim.Env, balancer proxy.Balancer) *core.DB {
	return buildTierOpts(env, core.WithBalancer(balancer))
}

// bgWrite issues one background-load insert. No fault injection runs in
// this example, so a failed write is a bug worth stopping on, not noise.
func bgWrite(p *sim.Proc, db *core.DB, id int64) {
	if _, err := db.Exec(p,
		"INSERT INTO comments (id, event_id, user_id, body, created) VALUES (?, 1, 1, 'bg', UTC_MICROS())",
		sqlengine.NewInt(id)); err != nil {
		log.Fatal(err)
	}
}

// createAndCheck creates an event and immediately loads the creator's
// event list (as a web app would after a redirect). It reports whether the
// fresh event was visible on the read path.
func createAndCheck(p *sim.Proc, db *core.DB, eventID int64) bool {
	if _, err := db.Exec(p,
		"INSERT INTO events (id, creator_id, title, description, event_date, created) VALUES (?, 7, 'My party', 'bring snacks', UTC_MICROS(), UTC_MICROS())",
		sqlengine.NewInt(eventID)); err != nil {
		log.Fatal(err)
	}
	set, err := db.Query(p, "SELECT id FROM events WHERE id = ?", sqlengine.NewInt(eventID))
	if err != nil {
		log.Fatal(err)
	}
	return len(set.Rows) == 1
}

func main() {
	// Round 1: default round-robin balancer. The read after the write
	// often lands on a slave that has not applied the INSERT yet.
	env := sim.NewEnv(7)
	db := buildTier(env, nil)
	// Background writers keep the applier busy so the anomaly window is
	// realistic rather than microscopic.
	for w := 0; w < 12; w++ {
		w := w
		env.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			for i := 0; p.Now() < 2*time.Minute; i++ {
				bgWrite(p, db, int64(5_000_000+w*100_000+i))
				p.Sleep(200 * time.Millisecond)
			}
		})
	}
	stale := 0
	const trials = 20
	env.Go("alice", func(p *sim.Proc) {
		p.Sleep(5 * time.Second) // let the writers build a backlog
		for i := 0; i < trials; i++ {
			if !createAndCheck(p, db, int64(9_000_000+i)) {
				stale++
			}
			p.Sleep(2 * time.Second)
		}
	})
	env.RunUntil(3 * time.Minute)
	fmt.Printf("round-robin balancer:        %2d/%d page loads missed the just-created event\n", stale, trials)
	env.Stop()
	env.Shutdown()

	// Round 2: the staleness-bounded balancer (the paper's proposed smart
	// load balancer) routes reads to the master whenever every slave is
	// too far behind, so the fresh event is always visible.
	env2 := sim.NewEnv(7)
	db2 := buildTier(env2, &proxy.StalenessBounded{MaxEventsBehind: 0})
	for w := 0; w < 12; w++ {
		w := w
		env2.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			for i := 0; p.Now() < 2*time.Minute; i++ {
				bgWrite(p, db2, int64(5_000_000+w*100_000+i))
				p.Sleep(200 * time.Millisecond)
			}
		})
	}
	stale2 := 0
	env2.Go("alice", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		for i := 0; i < trials; i++ {
			if !createAndCheck(p, db2, int64(9_000_000+i)) {
				stale2++
			}
			p.Sleep(2 * time.Second)
		}
	})
	env2.RunUntil(3 * time.Minute)
	fmt.Printf("staleness-bounded balancer:  %2d/%d page loads missed the just-created event", stale2, trials)
	fmt.Printf(" (%d reads fell back to the master)\n", db2.Proxy().Stats().MasterFallbacks)
	env2.Stop()
	env2.Shutdown()

	// Round 3: read-your-writes session consistency — only the *writer's
	// own* reads are pinned to fresh replicas (or the master); everyone
	// else keeps balancing freely. The cheapest fix for this anomaly.
	env4 := sim.NewEnv(7)
	db4 := buildTierOpts(env4, core.WithReadYourWrites())
	for w := 0; w < 12; w++ {
		w := w
		env4.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			for i := 0; p.Now() < 2*time.Minute; i++ {
				bgWrite(p, db4, int64(5_000_000+w*100_000+i))
				p.Sleep(200 * time.Millisecond)
			}
		})
	}
	stale4 := 0
	env4.Go("alice", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		for i := 0; i < trials; i++ {
			if !createAndCheck(p, db4, int64(9_000_000+i)) {
				stale4++
			}
			p.Sleep(2 * time.Second)
		}
	})
	env4.RunUntil(3 * time.Minute)
	fmt.Printf("read-your-writes sessions:   %2d/%d page loads missed the just-created event\n", stale4, trials)
	env4.Stop()
	env4.Shutdown()

	// A calendar page rendered from a slave, for flavor.
	env3 := sim.NewEnv(9)
	db3 := buildTier(env3, nil)
	env3.Go("render", func(p *sim.Proc) {
		set, err := db3.Query(p, `SELECT e.title, u.username FROM events e
			JOIN users u ON u.id = e.creator_id ORDER BY e.created DESC LIMIT 5`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nupcoming events (rendered from a replica):")
		for _, row := range set.Rows {
			fmt.Printf("  %-24s by %s\n", row[0], row[1])
		}
	})
	env3.Run()
}
