// Sharding: a cell-sharded database tier past the single-master ceiling.
// Four independent master+replica cells each own a disjoint range of hash
// slots over the Cloudstone key space; a router in front of the per-cell
// proxies sends single-key statements to the owning cell and fans
// multi-key reads out as scatter-gather with merged results.
//
// The walkthrough renders one cross-shard page by hand — a friend feed,
// where the friend list is a single-key read on the user's own cell and
// the friends' events come back from every cell in one merged IN-list
// query — then runs the Cloudstone mix (with the cross-shard feed in the
// read mix) against the tier while one live split carves a fifth cell out
// of the busiest one: rows are copied under a dual-write window, the
// binlog catch-up chases the moving tail, and a short drain barrier at
// cutover is the only write unavailability.
//
//	go run ./examples/sharding
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/shard"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func main() {
	env := sim.NewEnv(17)
	cfg := cloud.DefaultConfig()
	cfg.CPUCoV = 0 // homogeneous cells: the walkthrough is about routing, not luck
	provider := cloud.New(env, cfg)
	zone := cloud.Placement{Region: cloud.USWest1, Zone: "a"}

	const scale = 300
	db, err := core.OpenSharded(env, provider, cluster.Config{
		Mode:   repl.Async,
		Cost:   server.DefaultCostModel(),
		Master: cluster.NodeSpec{Place: zone},
		Slaves: []cluster.NodeSpec{{Place: zone}, {Place: zone}},
	},
		core.WithShards(4),
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(zone),
		core.WithKeyspace(cloudstone.ShardKeyspace()),
		core.WithPartitionedPreload(func(owns func(table string, key int64) bool) func(*server.DBServer) error {
			return cloudstone.PreloadOwned(scale, owns)
		}),
		core.WithPool(pool.Config{MaxActive: 160, MaxIdle: 160}),
	)
	if err != nil {
		log.Fatal(err)
	}

	sc := db.Shards()
	fmt.Printf("tier up: %d cells, %d slots, map v%d\n",
		sc.NumCells(), sc.Map().NumSlots(), sc.Map().Version())

	// One cross-shard page by hand, before any load: user 7's friend feed.
	env.Go("page", func(p *sim.Proc) {
		rs, err := db.Query(p, "SELECT friend_id FROM friends WHERE user_id = ?", sqlengine.NewInt(7))
		if err != nil {
			log.Fatalf("friend list: %v", err)
		}
		ph := make([]string, len(rs.Rows))
		args := make([]sqlengine.Value, len(rs.Rows))
		for i, r := range rs.Rows {
			ph[i] = "?"
			args[i] = r[0]
		}
		feed, err := db.Query(p, "SELECT id, title FROM events WHERE creator_id IN ("+
			strings.Join(ph, ", ")+") ORDER BY created DESC LIMIT 10", args...)
		if err != nil {
			log.Fatalf("friend feed: %v", err)
		}
		fmt.Printf("friend feed for user 7: %d friends on the home cell, %d events merged from all cells\n",
			len(rs.Rows), len(feed.Rows))
	})
	env.RunUntil(time.Minute)

	// Cloudstone against the tier, cross-shard feed included in the mix.
	driver := cloudstone.NewDriver(db, cloudstone.Config{
		Scale: scale, ReadRatio: 0.5, Users: 200,
		RampUp: time.Minute, Steady: 6 * time.Minute, RampDown: 30 * time.Second,
		CrossShard: true,
	})
	driver.Start(env)

	// One live split while the load runs: the busiest cell sheds half of
	// its slots into a fresh fifth cell.
	var rep *shard.SplitReport
	env.Go("splitter", func(p *sim.Proc) {
		from, _ := driver.SteadyWindow()
		p.SleepUntil(from + 30*time.Second)
		rowsBefore, _ := sc.RowCount("events")
		rep, err = db.SplitShard(p)
		if err != nil {
			log.Fatalf("split: %v", err)
		}
		if rep.Aborted {
			log.Fatalf("split aborted: %s", rep.Err)
		}
		rowsAfter, _ := sc.RowCount("events")
		fmt.Printf("[%7s] split cell %d → cell %d: moved %d rows (copy %s), write freeze %s, "+
			"%d catch-up entries; events table %d rows at copy start, %d at cutover "+
			"(writes kept landing throughout)\n",
			p.Now().Round(time.Second), rep.Src, rep.Dst, rep.MovedRows,
			rep.CopyDuration.Round(time.Second), rep.Downtime.Round(time.Millisecond),
			rep.CatchupEntries, rowsBefore, rowsAfter)
	})

	env.RunUntil(time.Minute + 7*time.Minute + 30*time.Second)
	env.Stop()
	env.Shutdown()

	res := driver.Result()
	st := sc.Stats()
	fmt.Printf("\ncloudstone on %d cells: %.2f ops/s, %d in-window errors\n",
		sc.NumCells(), res.Throughput, res.Errors)
	fmt.Printf("routing: %d single-key, %d scatter, %d broadcast; %d wrong-shard retries, %d map refreshes\n",
		st.SingleKey, st.ScatterOps, st.Broadcasts, st.WrongShardRetries, st.MapRefreshes)
	fmt.Println("per-cell ops served:")
	for i, n := range sc.CellThroughput() {
		marker := ""
		if rep != nil && i == rep.Dst {
			marker = "  (born mid-run)"
		}
		fmt.Printf("  cell %d: %d%s\n", i, n, marker)
	}
}
