GO ?= go

.PHONY: all build test race race-shards bench bench-smoke bench-kernel bench-plan plan-smoke shard-smoke consist-smoke determinism-smoke trace-smoke fuzz-seed figures examples vet fmt fmt-check lint lint-nocache clean check

all: build vet lint test

# The CI gate (.github/workflows/ci.yml runs exactly this).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(MAKE) trace-smoke
	$(MAKE) shard-smoke
	$(MAKE) consist-smoke
	$(MAKE) plan-smoke
	$(MAKE) bench-kernel
	$(MAKE) bench-plan

# The nine-analyzer lint suite — five package-local determinism linters
# (simtime, simrand, rawgo, maporder, closecheck) plus four whole-program
# flow-aware ones (errdrop, lockorder, mvccalias, sharedstate) — behind the
# gofmt cleanliness gate. cloudrepl-lint is the repo's own multichecker
# (cmd/cloudrepl-lint); suppressions are //cloudrepl:allow-<analyzer> <reason>
# comments and stale ones fail the lint (`-fix-stale` deletes them). Results
# are cached in .cloudrepl-lint-cache.json keyed on file hashes; an unchanged
# tree replays instantly.
lint: fmt-check
	$(GO) run ./cmd/cloudrepl-lint ./...

lint-nocache: fmt-check
	$(GO) run ./cmd/cloudrepl-lint -nocache ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Dedicated race lane for the packages that fan work onto real goroutines
# (RunShards workers, sweep parallelism) and the kernel they drive. -count=2
# reruns shake out schedule-dependent interleavings the first pass misses;
# sharedstate (static) and this lane (dynamic) cover the same bug class from
# both sides.
race-shards:
	$(GO) test -race -count=2 ./internal/experiment/ ./internal/sim/

# Compact per-figure benchmarks (one testing.B bench per table/figure).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Quick end-to-end check that the bench CLI still runs and emits
# machine-readable results: the A-ELASTIC and A-PIPELINE ablations on the
# short protocol, with BENCH_*.json written into results/.
bench-smoke:
	$(GO) run ./cmd/cloudrepl-bench -ablation elastic -short -q -json results
	$(GO) run ./cmd/cloudrepl-bench -ablation pipeline -short -q -json results

# Sharding smoke: the online-split and chaos-kill-during-split paths at unit
# scale (exactly-once row placement is asserted inside the tests), then the
# small A-SHARD grid on the short protocol with BENCH_shard.json written
# into results/.
shard-smoke:
	$(GO) test ./internal/shard -run 'TestSplitOnline|TestSplitChaosKillTarget' -count=1
	$(GO) run ./cmd/cloudrepl-bench -ablation shard -short -q -json results

# Consistency smoke: the MVCC snapshot-isolation oracle and the tier
# regression tests (failover-safe RYW tokens, shard×RYW, zero-value
# staleness bound) at unit scale, then the A-CONSIST tier grid on the short
# protocol with BENCH_consist.json written into results/.
consist-smoke:
	$(GO) test ./internal/sqlengine -run 'TestConcurrentSnapshotAgainstOracle|TestSnapshotIsolationReads' -count=1
	$(GO) test ./internal/proxy -run 'TestRYWTokenSurvivesFailover|TestStalenessBoundedZeroValueServesSlaves' -count=1
	$(GO) test ./internal/shard -run 'TestScatterHonorsSessionRYW|TestSessionRYWAcrossSplit' -count=1
	$(GO) run ./cmd/cloudrepl-bench -ablation consist -short -q -json results

# Kernel-speed smoke: measure the sim kernel (micro workload + one
# experiment cell), write BENCH_kernel.json into results/, and fail if the
# micro ns/event regresses >20% against the checked-in baseline. Refresh
# the baseline deliberately with:
#   cp results/BENCH_kernel.json bench/kernel_baseline.json
bench-kernel:
	$(GO) run ./cmd/cloudrepl-bench -bench-kernel -short -q -json results -kernel-baseline bench/kernel_baseline.json

# Planner-speed smoke: executor microbenchmarks on the four query shapes
# (point read, index scan, hash join, grouped aggregate), each best-of-3,
# with BENCH_planner.json written into results/ and a failure if any shape's
# rate regresses >20% against the checked-in baseline. Refresh the baseline
# deliberately with:
#   cp results/BENCH_planner.json bench/planner_baseline.json
bench-plan:
	$(GO) run ./cmd/cloudrepl-bench -bench-plan -q -json results -plan-baseline bench/planner_baseline.json

# Planner smoke: the EXPLAIN golden rendering and the cost-based plan
# choices (join-algorithm flip) at unit scale, the A-PLAN regression test
# (cost-based must beat naive end to end on the saturated grid), then the
# A-PLAN ablation on the short protocol with BENCH_plan.json written into
# results/.
plan-smoke:
	$(GO) test ./internal/sqlengine -run 'TestExplainGolden|TestPlannerJoinAlgorithmFlips' -count=1
	$(GO) test ./internal/experiment -run TestAblationPlanCostBeatsNaive -count=1
	$(GO) run ./cmd/cloudrepl-bench -ablation plan -short -q -json results

# Determinism sanitizer: the A-PIPELINE corner grid twice with one seed,
# byte-comparing the JSON; then the inject self-test, which must fail.
determinism-smoke:
	$(GO) run ./cmd/cloudrepl-bench -determinism -short -q
	@if $(GO) run ./cmd/cloudrepl-bench -determinism-inject -short -q >/dev/null 2>&1; then \
		echo "determinism-inject self-test did NOT fail"; exit 1; \
	else echo "determinism-inject self-test failed as it must"; fi

# Traced pipeline run end to end: write a Chrome trace-event file, then
# have cloudrepl-trace parse it and check every pipeline stage (client,
# pool, proxy, server, binlog, apply) produced at least one span and one
# trace covers the whole chain.
trace-smoke:
	$(GO) run ./cmd/cloudrepl-bench -trace results/trace.json -q
	$(GO) run ./cmd/cloudrepl-trace -check results/trace.json

# One pass over the checked-in fuzz corpora (no new input generation: every
# seed must keep passing) — binlog wire decoding and SQL parsing (the
# JOIN/GROUP BY/EXPLAIN grammar the planner PR added).
fuzz-seed:
	$(GO) test ./internal/binlog ./internal/sqlengine -run '^Fuzz' -count=1

# Regenerate every figure, table and ablation with the quick protocol.
figures:
	$(GO) run ./cmd/cloudrepl-bench -all -short -csv results

# Full-protocol panels (the paper's 10/20/5-minute runs; slower).
figures-full:
	$(GO) run ./cmd/cloudrepl-bench -all -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialcalendar
	$(GO) run ./examples/georeplication
	$(GO) run ./examples/failover
	$(GO) run ./examples/instancelottery
	$(GO) run ./examples/chaos
	$(GO) run ./examples/elasticity
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/sharding

clean:
	rm -rf results test_output.txt bench_output.txt
