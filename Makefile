GO ?= go

.PHONY: all build test race bench bench-smoke fuzz-seed figures examples vet fmt clean check

all: build vet test

# The CI gate (.github/workflows/ci.yml runs exactly this).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compact per-figure benchmarks (one testing.B bench per table/figure).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Quick end-to-end check that the bench CLI still runs and emits
# machine-readable results: the A-ELASTIC and A-PIPELINE ablations on the
# short protocol, with BENCH_*.json written into results/.
bench-smoke:
	$(GO) run ./cmd/cloudrepl-bench -ablation elastic -short -q -json results
	$(GO) run ./cmd/cloudrepl-bench -ablation pipeline -short -q -json results

# One pass over the checked-in binlog fuzz corpus (no new input generation:
# every testdata/fuzz seed must keep passing).
fuzz-seed:
	$(GO) test ./internal/binlog -run '^Fuzz' -count=1

# Regenerate every figure, table and ablation with the quick protocol.
figures:
	$(GO) run ./cmd/cloudrepl-bench -all -short -csv results

# Full-protocol panels (the paper's 10/20/5-minute runs; slower).
figures-full:
	$(GO) run ./cmd/cloudrepl-bench -all -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialcalendar
	$(GO) run ./examples/georeplication
	$(GO) run ./examples/failover
	$(GO) run ./examples/instancelottery
	$(GO) run ./examples/chaos
	$(GO) run ./examples/elasticity
	$(GO) run ./examples/pipeline

clean:
	rm -rf results test_output.txt bench_output.txt
