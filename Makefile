GO ?= go

.PHONY: all build test race bench figures examples vet fmt clean check

all: build vet test

# The CI gate (.github/workflows/ci.yml runs exactly this).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compact per-figure benchmarks (one testing.B bench per table/figure).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate every figure, table and ablation with the quick protocol.
figures:
	$(GO) run ./cmd/cloudrepl-bench -all -short -csv results

# Full-protocol panels (the paper's 10/20/5-minute runs; slower).
figures-full:
	$(GO) run ./cmd/cloudrepl-bench -all -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialcalendar
	$(GO) run ./examples/georeplication
	$(GO) run ./examples/failover
	$(GO) run ./examples/instancelottery
	$(GO) run ./examples/chaos

clean:
	rm -rf results test_output.txt bench_output.txt
