// Benchmarks regenerating the paper's evaluation artifacts in compact form
// (one bench per figure/table/ablation; see EXPERIMENTS.md for the mapping
// and cmd/cloudrepl-bench for the full panels). Each iteration executes
// complete experiment runs on virtual time; the interesting output is the
// custom metrics (ops/s, delay ms, …), not ns/op.
//
//	go test -bench=. -benchmem
package cloudrepl_test

import (
	"testing"
	"time"

	"cloudrepl/internal/experiment"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// benchSpec returns a compact-protocol spec (1 min ramp, 3 min steady).
func benchSpec(seed int64, users, slaves int, loc experiment.Location, ratio float64, scale int) experiment.RunSpec {
	return experiment.RunSpec{
		Seed: seed, Users: users, Slaves: slaves, Scale: scale,
		ReadRatio: ratio, Loc: loc,
		RampUp: time.Minute, Steady: 3 * time.Minute, RampDown: 30 * time.Second,
	}
}

func mustRun(b *testing.B, spec experiment.RunSpec) experiment.RunResult {
	b.Helper()
	res, err := experiment.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig2Throughput5050 regenerates Fig. 2's key points: 50/50
// ratio, data size 300. The 1-slave point saturates the slave near 100
// users; the 4-slave point is master-bound near 175–200 users.
func BenchmarkFig2Throughput5050(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oneSlave := mustRun(b, benchSpec(100, 100, 1, experiment.SameZone, 0.5, 300))
		fourSlaves := mustRun(b, benchSpec(101, 200, 4, experiment.SameZone, 0.5, 300))
		b.ReportMetric(oneSlave.Throughput, "tp_1slv_100u(ops/s)")
		b.ReportMetric(fourSlaves.Throughput, "tp_4slv_200u(ops/s)")
		b.ReportMetric(oneSlave.SlaveUtil[0]*100, "slaveutil_1slv(%)")
		b.ReportMetric(fourSlaves.MasterUtil*100, "masterutil_4slv(%)")
	}
}

// BenchmarkFig3Throughput8020 regenerates Fig. 3's key points: 80/20
// ratio, data size 600; throughput scales with slaves until the master
// saturates near 10 slaves.
func BenchmarkFig3Throughput8020(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := mustRun(b, benchSpec(200, 100, 1, experiment.SameZone, 0.8, 600))
		ten := mustRun(b, benchSpec(201, 450, 10, experiment.SameZone, 0.8, 600))
		b.ReportMetric(one.Throughput, "tp_1slv_100u(ops/s)")
		b.ReportMetric(ten.Throughput, "tp_10slv_450u(ops/s)")
		b.ReportMetric(ten.MasterUtil*100, "masterutil_10slv(%)")
	}
}

// BenchmarkFig4ClockSync regenerates the clock experiment (and the T-NTP
// statistics): paper medians 28.23 ms (sync once) and 3.30 ms (every
// second).
func BenchmarkFig4ClockSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once, every := experiment.Fig4(99)
		b.ReportMetric(once.Stats.Median, "median_once(ms)")
		b.ReportMetric(once.Stats.StdDev, "sigma_once(ms)")
		b.ReportMetric(every.Stats.Median, "median_1s(ms)")
		b.ReportMetric(every.Stats.StdDev, "sigma_1s(ms)")
	}
}

// BenchmarkFig5Delay5050 regenerates Fig. 5's trends: relative replication
// delay grows with workload and shrinks when slaves are added.
func BenchmarkFig5Delay5050(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base2 := mustRun(b, benchSpec(300, 0, 2, experiment.SameZone, 0.5, 300))
		low := mustRun(b, benchSpec(301, 50, 2, experiment.SameZone, 0.5, 300))
		high := mustRun(b, benchSpec(302, 150, 2, experiment.SameZone, 0.5, 300))
		base4 := mustRun(b, benchSpec(303, 0, 4, experiment.SameZone, 0.5, 300))
		high4 := mustRun(b, benchSpec(304, 150, 4, experiment.SameZone, 0.5, 300))
		b.ReportMetric(low.AvgDelayMs-base2.AvgDelayMs, "reldelay_2slv_50u(ms)")
		b.ReportMetric(high.AvgDelayMs-base2.AvgDelayMs, "reldelay_2slv_150u(ms)")
		b.ReportMetric(high4.AvgDelayMs-base4.AvgDelayMs, "reldelay_4slv_150u(ms)")
	}
}

// BenchmarkFig6Delay8020 regenerates Fig. 6's trends at 80/20 with the
// different-region placement (geography shifts the baseline, workload
// moves the loaded delay by orders of magnitude).
func BenchmarkFig6Delay8020(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := mustRun(b, benchSpec(400, 0, 4, experiment.DiffRegion, 0.8, 600))
		low := mustRun(b, benchSpec(401, 100, 4, experiment.DiffRegion, 0.8, 600))
		high := mustRun(b, benchSpec(402, 300, 4, experiment.DiffRegion, 0.8, 600))
		b.ReportMetric(base.AvgDelayMs, "baseline_delay(ms)")
		b.ReportMetric(low.AvgDelayMs-base.AvgDelayMs, "reldelay_100u(ms)")
		b.ReportMetric(high.AvgDelayMs-base.AvgDelayMs, "reldelay_300u(ms)")
	}
}

// BenchmarkTableRTT regenerates the §IV-B.2 half-RTT measurements
// (paper: 16 / 21 / 173 ms).
func BenchmarkTableRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.TableRTT(7)
		for _, r := range rows {
			switch r.Loc {
			case experiment.SameZone:
				b.ReportMetric(r.HalfRTTMs, "halfrtt_samezone(ms)")
			case experiment.DiffZone:
				b.ReportMetric(r.HalfRTTMs, "halfrtt_diffzone(ms)")
			case experiment.DiffRegion:
				b.ReportMetric(r.HalfRTTMs, "halfrtt_diffregion(ms)")
			}
		}
	}
}

// BenchmarkAblationSyncModes compares async / semi-sync / sync write
// latencies across regions (A-SYNC).
func BenchmarkAblationSyncModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mode := range []repl.Mode{repl.Async, repl.Sync} {
			spec := benchSpec(500+int64(mode), 75, 2, experiment.DiffRegion, 0.5, 300)
			spec.Mode = mode
			res := mustRun(b, spec)
			b.ReportMetric(res.WriteLatencyMsMean, "wlat_"+mode.String()+"(ms)")
			b.ReportMetric(res.Throughput, "tp_"+mode.String()+"(ops/s)")
		}
	}
}

// BenchmarkAblationBalancers compares round-robin vs the staleness-bounded
// balancer past saturation (A-LB).
func BenchmarkAblationBalancers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.AblationBalancers(experiment.SweepOpts{Short: true, Seed: 600})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "round-robin" {
				b.ReportMetric(r.Res.Throughput, "tp_roundrobin(ops/s)")
			}
			if r.Name == "staleness-bounded(30)" {
				b.ReportMetric(r.Res.Throughput, "tp_stalebound(ops/s)")
				b.ReportMetric(float64(r.Res.MasterFallbacks), "fallbacks")
			}
		}
	}
}

// BenchmarkAblationInstanceVariation measures the throughput spread from
// the CoV-21% instance lottery (A-VAR).
func BenchmarkAblationInstanceVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := experiment.AblationInstanceVariation(experiment.SweepOpts{Short: true, Seed: 700}, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.MeanTp, "mean_tp(ops/s)")
		b.ReportMetric(v.CoV*100, "tp_cov(%)")
	}
}

// --- library micro-benchmarks ---

// BenchmarkSQLEnginePointSelect measures the engine's indexed read path.
func BenchmarkSQLEnginePointSelect(b *testing.B) {
	eng := sqlengine.NewEngine()
	eng.CreateDatabase("d", false)
	s := eng.NewSession("d")
	s.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(32))")
	ins, err := eng.Prepare("INSERT INTO t (id, v) VALUES (?, 'x')")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ins.Run(s, sqlengine.NewInt(int64(i)))
	}
	point, err := eng.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := point.Run(s, sqlengine.NewInt(int64(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLEngineInsert measures the engine's write path.
func BenchmarkSQLEngineInsert(b *testing.B) {
	eng := sqlengine.NewEngine()
	eng.CreateDatabase("d", false)
	s := eng.NewSession("d")
	s.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(32), INDEX idx_v (v))")
	ins, err := eng.Prepare("INSERT INTO t (id, v) VALUES (?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ins.Run(s,
			sqlengine.NewInt(int64(i)), sqlengine.NewString("val")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the parser on a representative statement.
func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT e.id, e.title FROM event_tags et JOIN events e ON e.id = et.event_id WHERE et.tag_id = ? ORDER BY e.created DESC LIMIT 20"
	for i := 0; i < b.N; i++ {
		if _, err := sqlengine.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEvents measures raw kernel event throughput (events/s drive
// how fast 35-minute experiments complete).
func BenchmarkSimEvents(b *testing.B) {
	env := sim.NewEnv(1)
	for i := 0; i < 100; i++ {
		env.Go("ticker", func(p *sim.Proc) {
			for {
				p.Sleep(time.Millisecond)
			}
		})
	}
	b.ResetTimer()
	env.RunUntil(sim.Time(b.N) * 10 * time.Microsecond)
	b.StopTimer()
	env.Stop()
	env.Shutdown()
}
